//! Long-running batched inference over checkpointed models.
//!
//! The training pipeline produces checkpoints ([`sqvae_core::checkpoint`]);
//! this module serves them. Two layers:
//!
//! * [`BatchEngine`] — a synchronous core: a warm-model registry keyed by
//!   checkpoint path, a request queue, and a coalescer that merges single
//!   `encode` / `decode` / `sample` / `reconstruct` requests targeting the
//!   same model into one batched forward pass. Every model call is
//!   row-independent (the quantum layers shard batch rows via `map_rows`
//!   with a bit-identical guarantee), so a coalesced batch returns exactly
//!   the bytes the same requests would produce one at a time.
//! * [`InferenceServer`] — a worker thread wrapping the engine: bounded
//!   submission queue (typed [`ServeError::QueueFull`] backpressure when
//!   it overflows), blocking [`InferenceServer::request`] round trips, a
//!   maintenance [`InferenceServer::pause`], and a graceful
//!   [`InferenceServer::shutdown`] that drains in-flight work before the
//!   thread exits.
//!
//! ## Fault tolerance
//!
//! The server is built to keep its core invariant — **every accepted
//! request resolves**, with a result or a typed error, never a hang —
//! under the failures a long-running deployment actually sees:
//!
//! * **Deadlines.** A request can carry its own [`Request::deadline`], or
//!   inherit [`ServerConfig::default_timeout`]. Expired requests are
//!   load-shed in-queue (before they waste a batch slot) and
//!   [`InferenceServer::wait`] gives up at the deadline — both surface as
//!   [`ServeError::DeadlineExceeded`].
//! * **Worker supervision.** A panic in the worker (a model bug, or an
//!   injected [`sqvae_core::faults::FaultPoint::WorkerPanic`]) fails the
//!   tickets it held in flight with [`ServeError::WorkerGone`], and the
//!   supervisor respawns the worker on the next client call, rebuilding
//!   the warm-model registry from the checkpoint paths the dead worker had
//!   loaded. Queued-but-unstolen requests survive the crash untouched.
//! * **Client retries.** [`InferenceServer::request`] retries retryable
//!   errors ([`ServeError::QueueFull`], [`ServeError::WorkerGone`]) per
//!   the [`ServerConfig::retry`] policy with exponential backoff.
//! * **Poison recovery.** Every lock acquisition recovers from mutex
//!   poisoning, so one panic never cascades into aborts elsewhere.
//! * **Checkpoint healing.** Models load through
//!   [`sqvae_core::checkpoint::load_model_or_recover`], so a corrupted
//!   checkpoint file falls back to its `.bak` generation instead of
//!   failing every request that targets it.
//!
//! Sampling stays deterministic under coalescing because each `sample`
//! request carries its own seed: the engine draws that request's latent
//! rows from a fresh `StdRng::seed_from_u64(seed)` — the same stream a
//! direct [`sqvae_core::Autoencoder::sample`] call would consume — and only
//! the decoder pass is shared.
//!
//! ## Example
//!
//! ```no_run
//! use sqvae::serve::{InferenceServer, Op, Request, ServerConfig};
//!
//! # fn main() -> Result<(), sqvae::serve::ServeError> {
//! let server = InferenceServer::start(ServerConfig::default());
//! let sampled = server.request(Request::new("model.ckpt", Op::Sample { n: 4, seed: 7 }))?;
//! println!("sampled {} molecules-worth of features", sampled.rows());
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_core::checkpoint::{self, Checkpoint, RecoverySource};
use sqvae_core::faults::{self, FaultPoint};
use sqvae_core::Autoencoder;
use sqvae_nn::{Matrix, NnError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors surfaced by the inference service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submission queue is at capacity; retry after in-flight work
    /// drains. This is the backpressure signal — the server never buffers
    /// unboundedly.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The worker thread is gone (panicked) before answering this request.
    WorkerGone,
    /// A request carried no rows to process (`n == 0` or an empty matrix).
    EmptyRequest,
    /// The referenced checkpoint could not be loaded (message from
    /// [`sqvae_core::checkpoint::CheckpointError`]).
    Checkpoint(String),
    /// The model rejected the payload (shape mismatch etc.).
    Model(NnError),
    /// The request's deadline passed before a result was produced: either
    /// load-shed in-queue or abandoned by [`InferenceServer::wait`].
    DeadlineExceeded,
    /// [`InferenceServer::wait`] was asked about an id the server never
    /// issued (or whose result was already consumed).
    UnknownTicket {
        /// The unrecognised ticket id.
        id: u64,
    },
}

impl ServeError {
    /// Whether retrying the same request may succeed: transient conditions
    /// ([`ServeError::QueueFull`] backpressure, a [`ServeError::WorkerGone`]
    /// crash the supervisor heals) are retryable; payload and deadline
    /// errors are not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::QueueFull { .. } | ServeError::WorkerGone)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue is full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerGone => write!(f, "worker thread exited before answering"),
            ServeError::EmptyRequest => write!(f, "request carries no rows"),
            ServeError::Checkpoint(msg) => write!(f, "checkpoint load failed: {msg}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline passed before the request was served")
            }
            ServeError::UnknownTicket { id } => {
                write!(f, "ticket {id} was never issued or already consumed")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Model(e)
    }
}

/// One inference operation on a model.
#[derive(Debug, Clone)]
pub enum Op {
    /// Map data rows to latent codes (VAEs: the posterior mean).
    Encode(Matrix),
    /// Decode latent rows into data space.
    Decode(Matrix),
    /// Evaluation-mode round trip (encode → decode).
    Reconstruct(Matrix),
    /// Draw `n` fresh samples by decoding `z ~ N(0, I)` drawn from
    /// `StdRng::seed_from_u64(seed)` — bit-identical to a direct
    /// [`sqvae_core::Autoencoder::sample`] call with that RNG.
    Sample {
        /// Number of samples to draw.
        n: usize,
        /// Seed for this request's latent draws.
        seed: u64,
    },
}

impl Op {
    /// Number of output rows this op will produce (and the coalescer's
    /// row-budget cost).
    fn rows(&self) -> usize {
        match self {
            Op::Encode(m) | Op::Decode(m) | Op::Reconstruct(m) => m.rows(),
            Op::Sample { n, .. } => *n,
        }
    }

    /// Coalescing key: ops merge into one batch only when the kind and the
    /// payload width agree (widths always agree for same-kind ops on one
    /// model, but a mis-sized payload must not poison its batchmates).
    fn kind_and_width(&self) -> (u8, usize) {
        match self {
            Op::Encode(m) => (0, m.cols()),
            Op::Decode(m) => (1, m.cols()),
            Op::Reconstruct(m) => (2, m.cols()),
            Op::Sample { .. } => (3, 0),
        }
    }
}

/// A request: which checkpoint to serve, and what to do.
#[derive(Debug, Clone)]
pub struct Request {
    /// Path of the checkpoint file; the engine loads it on first use and
    /// keeps the model warm for subsequent requests.
    pub model: String,
    /// The operation to run.
    pub op: Op,
    /// Absolute deadline: past this instant the request is load-shed (if
    /// still queued) or abandoned (if in flight) with
    /// [`ServeError::DeadlineExceeded`]. `None` falls back to
    /// [`ServerConfig::default_timeout`], counted from submission.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A request with no deadline of its own (the server's
    /// [`ServerConfig::default_timeout`] still applies, if set).
    pub fn new(model: impl Into<String>, op: Op) -> Self {
        Request {
            model: model.into(),
            op,
            deadline: None,
        }
    }

    /// Sets an absolute deadline `timeout` from now. The deadline survives
    /// [`InferenceServer::request`] retries — the budget covers the whole
    /// round trip, not each attempt.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// Handle for retrieving one request's result from a [`BatchEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Counters describing what an engine did, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests completed (successfully or with an error).
    pub requests: usize,
    /// Model forward passes executed. `requests > batches` means
    /// coalescing merged work.
    pub batches: usize,
    /// Total rows pushed through model forward passes.
    pub rows: usize,
    /// Largest number of requests merged into one batch.
    pub largest_batch_requests: usize,
    /// Model loads that had to fall back to a checkpoint's `.bak`
    /// generation because the primary file was corrupt or missing.
    pub checkpoint_recoveries: usize,
}

impl EngineStats {
    /// Folds another generation's counters into this one. The server uses
    /// this to report totals across worker respawns; counts add, the
    /// largest-batch high-water mark takes the max.
    pub fn absorb(&mut self, other: EngineStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.rows += other.rows;
        self.largest_batch_requests = self
            .largest_batch_requests
            .max(other.largest_batch_requests);
        self.checkpoint_recoveries += other.checkpoint_recoveries;
    }
}

struct Job {
    ticket: Ticket,
    model: String,
    op: Op,
}

/// The synchronous batching core: queue, coalescer, and warm-model
/// registry. Single-threaded by design — [`InferenceServer`] provides the
/// concurrency wrapper — which keeps the coalescing logic deterministic and
/// directly testable.
pub struct BatchEngine {
    models: HashMap<String, Autoencoder>,
    queue: VecDeque<Job>,
    results: HashMap<Ticket, Result<Matrix, ServeError>>,
    next_ticket: u64,
    max_batch_rows: usize,
    stats: EngineStats,
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("warm_models", &self.models.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BatchEngine {
    /// An empty engine whose coalesced batches hold at most
    /// `max_batch_rows` rows (sized to the `map_rows` sharding sweet spot).
    ///
    /// # Panics
    ///
    /// Panics when `max_batch_rows == 0`.
    pub fn new(max_batch_rows: usize) -> Self {
        assert!(max_batch_rows > 0, "batch row budget must be positive");
        BatchEngine {
            models: HashMap::new(),
            queue: VecDeque::new(),
            results: HashMap::new(),
            next_ticket: 0,
            max_batch_rows,
            stats: EngineStats::default(),
        }
    }

    /// Queues a request; [`BatchEngine::drain`] (or repeated
    /// [`BatchEngine::process_next_batch`]) executes it.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyRequest`] when the request carries zero rows.
    pub fn submit(&mut self, req: Request) -> Result<Ticket, ServeError> {
        if req.op.rows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.queue.push_back(Job {
            ticket,
            model: req.model,
            op: req.op,
        });
        Ok(ticket)
    }

    /// Number of queued, not-yet-processed requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Removes and returns the result for `ticket`, if its batch has run.
    pub fn take_result(&mut self, ticket: Ticket) -> Option<Result<Matrix, ServeError>> {
        self.results.remove(&ticket)
    }

    /// Processes every queued request.
    pub fn drain(&mut self) {
        while !self.queue.is_empty() {
            self.process_next_batch();
        }
    }

    /// Coalesces the front request with every queued request sharing its
    /// (model, op kind, width) key — up to the row budget — and runs them
    /// as one batched forward pass. Returns the number of requests
    /// completed (0 when the queue is empty).
    pub fn process_next_batch(&mut self) -> usize {
        let Some(first) = self.queue.pop_front() else {
            return 0;
        };
        let key = (first.model.clone(), first.op.kind_and_width());
        let mut batch = vec![first];
        let mut rows = batch[0].op.rows();
        // Pull every same-key job that still fits the row budget; different
        // keys stay queued in order for later batches.
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(job) = self.queue.pop_front() {
            let fits = rows + job.op.rows() <= self.max_batch_rows;
            if fits && job.model == key.0 && job.op.kind_and_width() == key.1 {
                rows += job.op.rows();
                batch.push(job);
            } else {
                kept.push_back(job);
            }
        }
        self.queue = kept;

        let completed = batch.len();
        self.stats.requests += completed;
        self.stats.largest_batch_requests = self.stats.largest_batch_requests.max(completed);
        match self.run_batch(&batch) {
            Ok(outputs) => {
                self.stats.batches += 1;
                self.stats.rows += rows;
                for (job, out) in batch.iter().zip(outputs) {
                    self.results.insert(job.ticket, Ok(out));
                }
            }
            Err(e) => {
                for job in &batch {
                    self.results.insert(job.ticket, Err(e.clone()));
                }
            }
        }
        completed
    }

    /// Runs one coalesced batch: stacks every job's rows, executes a single
    /// model pass, and splits the output back per job.
    fn run_batch(&mut self, batch: &[Job]) -> Result<Vec<Matrix>, ServeError> {
        let path = batch[0].model.clone();
        self.warm_up(&path)?;
        let model = self.models.get_mut(&path).expect("just warmed");

        // Per-request latent draws for Sample jobs: each consumes exactly
        // the RNG stream its direct `sample` call would, so only the decode
        // is shared.
        let inputs: Vec<Matrix> = batch
            .iter()
            .map(|job| match &job.op {
                Op::Encode(m) | Op::Decode(m) | Op::Reconstruct(m) => m.clone(),
                Op::Sample { n, seed } => {
                    model.sample_latent(*n, &mut StdRng::seed_from_u64(*seed))
                }
            })
            .collect();
        let stacked = Matrix::vstack(&inputs)?;
        let output = match &batch[0].op {
            Op::Encode(_) => model.encode(&stacked)?,
            Op::Decode(_) | Op::Sample { .. } => model.decode(&stacked)?,
            Op::Reconstruct(_) => model.reconstruct(&stacked)?,
        };

        let mut outputs = Vec::with_capacity(batch.len());
        let mut start = 0usize;
        for job in batch {
            let n = job.op.rows();
            outputs.push(Matrix::from_fn(n, output.cols(), |r, c| {
                output.get(start + r, c)
            }));
            start += n;
        }
        Ok(outputs)
    }

    /// Loads the checkpoint at `path` into the warm registry (no-op when
    /// already warm), recovering from the `.bak` generation if the primary
    /// file is corrupt. The respawned worker uses this to rebuild the dead
    /// generation's registry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Checkpoint`] when neither the primary nor the backup
    /// loads.
    pub fn warm_up(&mut self, path: &str) -> Result<(), ServeError> {
        if self.models.contains_key(path) {
            return Ok(());
        }
        let (model, source) = checkpoint::load_model_or_recover(path)
            .map_err(|e| ServeError::Checkpoint(e.to_string()))?;
        if source == RecoverySource::Backup {
            self.stats.checkpoint_recoveries += 1;
        }
        self.models.insert(path.to_string(), model);
        Ok(())
    }

    /// Number of models currently held warm.
    pub fn warm_models(&self) -> usize {
        self.models.len()
    }

    /// Checkpoint paths currently warm, sorted for determinism. The server
    /// snapshots these so a respawned worker can rebuild the registry.
    pub fn warm_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.models.keys().cloned().collect();
        paths.sort();
        paths
    }
}

/// Client-side retry policy for [`InferenceServer::request`]: retryable
/// errors (see [`ServeError::is_retryable`]) are retried up to
/// `max_attempts` total attempts with exponential backoff (`backoff`,
/// doubling per failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, counting the first (`1` disables retries).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further failure.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, errors surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Backoff before retry number `attempt` (1-based): `backoff << (attempt - 1)`.
    fn delay(&self, attempt: u32) -> Duration {
        self.backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

/// Configuration for [`InferenceServer::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum queued (accepted, unprocessed) requests before
    /// [`ServeError::QueueFull`] backpressure kicks in.
    pub capacity: usize,
    /// Row budget per coalesced batch (see [`BatchEngine::new`]).
    pub max_batch_rows: usize,
    /// Deadline applied (from submission time) to requests that carry no
    /// [`Request::deadline`] of their own. `None` means such requests wait
    /// indefinitely.
    pub default_timeout: Option<Duration>,
    /// Retry policy for [`InferenceServer::request`].
    pub retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 256,
            max_batch_rows: 64,
            default_timeout: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// An accepted request with its server-assigned id and effective deadline
/// (the request's own, or submission time + default timeout).
struct QueuedJob {
    id: u64,
    req: Request,
    deadline: Option<Instant>,
}

#[derive(Default)]
struct ServerState {
    queue: VecDeque<QueuedJob>,
    results: HashMap<u64, Result<Matrix, ServeError>>,
    /// Issued, not-yet-consumed ids → effective deadline. Absence (and no
    /// queued result) means the id was never issued: [`ServeError::UnknownTicket`].
    outstanding: HashMap<u64, Option<Instant>>,
    /// Ids whose waiter gave up at the deadline while the worker held them;
    /// the worker discards their results instead of publishing.
    abandoned: HashSet<u64>,
    /// Ids the worker has stolen and not yet resolved. A worker panic fails
    /// exactly these with [`ServeError::WorkerGone`].
    in_flight: Vec<u64>,
    /// Checkpoint paths the current worker generation holds warm; a
    /// respawned worker rebuilds its registry from these.
    warm_paths: Vec<String>,
    next_id: u64,
    paused: bool,
    shutting_down: bool,
    /// The worker thread is running (spawned and neither exited nor
    /// crashed).
    worker_alive: bool,
    /// The worker panicked and has not been respawned yet.
    worker_crashed: bool,
    /// Times the supervisor respawned a crashed worker.
    respawns: u64,
    /// Requests that resolved with [`ServeError::DeadlineExceeded`].
    deadline_shed: u64,
    /// Counters folded in from finished worker generations.
    stats_done: EngineStats,
    /// Live counters of the current worker generation.
    stats_live: EngineStats,
}

struct Shared {
    state: Mutex<ServerState>,
    /// Wakes the worker (new work, resume, shutdown).
    work_cv: Condvar,
    /// Wakes clients blocked on results.
    done_cv: Condvar,
}

/// Locks the server state, recovering from poisoning: a panic elsewhere
/// must not abort every subsequent client call. The state is kept
/// consistent across panics by [`PanicGuard`], so the recovered guard is
/// safe to use.
fn lock_state(shared: &Shared) -> MutexGuard<'_, ServerState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fails queued requests whose deadline already passed (load-shedding
/// before they waste a batch slot) and wakes their waiters.
fn shed_expired(state: &mut ServerState, shared: &Shared) {
    let now = Instant::now();
    let mut shed_any = false;
    let mut kept = VecDeque::with_capacity(state.queue.len());
    for job in state.queue.drain(..) {
        match job.deadline {
            Some(d) if d <= now => {
                state.deadline_shed += 1;
                shed_any = true;
                if !state.abandoned.remove(&job.id) {
                    state
                        .results
                        .insert(job.id, Err(ServeError::DeadlineExceeded));
                }
            }
            _ => kept.push_back(job),
        }
    }
    state.queue = kept;
    if shed_any {
        shared.done_cv.notify_all();
    }
}

/// Runs on every worker exit path. On a panic (a model bug or an injected
/// [`FaultPoint::WorkerPanic`]) it restores the invariant that every
/// accepted request resolves: all in-flight ids fail with
/// [`ServeError::WorkerGone`], counters are folded into the generation
/// total, and both condvars wake so waiters observe the crash immediately.
struct PanicGuard {
    shared: Arc<Shared>,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let mut state = lock_state(&self.shared);
        for id in std::mem::take(&mut state.in_flight) {
            if state.abandoned.remove(&id) {
                continue; // waiter already gave up at its deadline
            }
            state.results.insert(id, Err(ServeError::WorkerGone));
        }
        let live = std::mem::take(&mut state.stats_live);
        state.stats_done.absorb(live);
        state.worker_alive = false;
        state.worker_crashed = true;
        self.shared.done_cv.notify_all();
        self.shared.work_cv.notify_all();
    }
}

fn spawn_worker(shared: Arc<Shared>, max_batch_rows: usize) -> JoinHandle<()> {
    std::thread::spawn(move || run_worker(shared, max_batch_rows))
}

fn run_worker(shared: Arc<Shared>, max_batch_rows: usize) {
    let _guard = PanicGuard {
        shared: Arc::clone(&shared),
    };
    let mut engine = BatchEngine::new(max_batch_rows);
    // Respawn path: rebuild the warm registry the dead generation held.
    // Paths that no longer load are skipped here; requests that still
    // target them get the typed checkpoint error per batch.
    let warm: Vec<String> = lock_state(&shared).warm_paths.clone();
    for path in &warm {
        let _ = engine.warm_up(path);
    }

    let mut state = lock_state(&shared);
    loop {
        shed_expired(&mut state, &shared);
        if (state.queue.is_empty() || state.paused) && !state.shutting_down {
            // Sleep until new work — or until the earliest queued deadline,
            // so paused/idle servers still shed expired requests promptly.
            let next_deadline = state.queue.iter().filter_map(|j| j.deadline).min();
            state = match next_deadline {
                Some(d) => {
                    let now = Instant::now();
                    if d <= now {
                        continue; // shed on the next loop iteration
                    }
                    let (guard, _) = shared
                        .work_cv
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard
                }
                None => shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
            };
            continue;
        }
        if state.queue.is_empty() && state.shutting_down {
            break;
        }
        // Steal the accepted queue and run it without the lock, so clients
        // keep submitting (and hitting backpressure) while the batch
        // executes. `in_flight` records the stolen ids: they are the blast
        // radius if this generation panics mid-batch.
        let stolen: Vec<QueuedJob> = state.queue.drain(..).collect();
        state.in_flight = stolen.iter().map(|j| j.id).collect();
        drop(state);

        // Chaos hook: fires exactly where a real model panic would land —
        // after stealing, with tickets in flight and the lock released.
        if faults::trigger(FaultPoint::WorkerPanic).is_some() {
            panic!("injected worker panic (sqvae::faults)");
        }

        let mut tickets = Vec::with_capacity(stolen.len());
        let mut rejected = Vec::new();
        for job in stolen {
            match engine.submit(job.req) {
                Ok(t) => tickets.push((job.id, t)),
                Err(e) => rejected.push((job.id, e)),
            }
        }
        engine.drain();

        state = lock_state(&shared);
        state.in_flight.clear();
        for (id, t) in tickets {
            let result = engine
                .take_result(t)
                .expect("drained engine has every result");
            publish_result(&mut state, id, result);
        }
        for (id, e) in rejected {
            publish_result(&mut state, id, Err(e));
        }
        state.warm_paths = engine.warm_paths();
        state.stats_live = engine.stats();
        shared.done_cv.notify_all();
    }
    // Clean exit: fold this generation's counters into the running total.
    state.stats_done.absorb(engine.stats());
    state.stats_live = EngineStats::default();
    state.worker_alive = false;
    shared.done_cv.notify_all();
}

/// Publishes one result, honouring abandonment: a waiter that timed out
/// while the worker held the id has already consumed its error, so the
/// late result is dropped instead of leaking into `results`.
fn publish_result(state: &mut ServerState, id: u64, result: Result<Matrix, ServeError>) {
    if state.abandoned.remove(&id) {
        return;
    }
    state.results.insert(id, result);
}

/// A snapshot of the server's liveness counters (see
/// [`InferenceServer::health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerHealth {
    /// The worker thread is currently running.
    pub worker_alive: bool,
    /// Times the supervisor respawned a crashed worker.
    pub respawns: u64,
    /// Requests that resolved with [`ServeError::DeadlineExceeded`].
    pub deadline_shed: u64,
    /// Accepted requests not yet processed.
    pub pending: usize,
}

/// A supervised worker thread serving batched inference over a
/// [`BatchEngine`].
///
/// Submissions are bounded by [`ServerConfig::capacity`]; the worker steals
/// the whole queue at once, coalesces it, runs it, and publishes results.
/// A worker panic fails only the tickets it held in flight
/// ([`ServeError::WorkerGone`]); the supervisor respawns the worker on the
/// next client call with the warm-model registry rebuilt from checkpoints.
/// [`InferenceServer::shutdown`] drains everything already accepted before
/// the thread exits.
pub struct InferenceServer {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
    config: ServerConfig,
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer")
            .field("capacity", &self.config.capacity)
            .finish()
    }
}

impl InferenceServer {
    /// Spawns the worker thread and returns the handle clients submit to.
    pub fn start(config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(ServerState {
                worker_alive: true,
                ..ServerState::default()
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let worker = spawn_worker(Arc::clone(&shared), config.max_batch_rows);
        InferenceServer {
            shared,
            worker: Mutex::new(Some(worker)),
            config,
        }
    }

    /// Respawns the worker if it crashed. Called at the entry of every
    /// client operation, so the server heals on the next touch after a
    /// panic without a dedicated monitor thread. During shutdown the
    /// respawn only happens when accepted work still needs draining.
    fn supervise(&self) {
        fn respawn_needed(state: &ServerState) -> bool {
            state.worker_crashed && (!state.shutting_down || !state.queue.is_empty())
        }
        if !respawn_needed(&lock_state(&self.shared)) {
            return;
        }
        // Lock order everywhere: worker slot, then state.
        let mut slot = self.worker.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let mut state = lock_state(&self.shared);
            if !respawn_needed(&state) {
                return; // another client already respawned
            }
            state.worker_crashed = false;
            state.worker_alive = true;
            state.respawns += 1;
        }
        if let Some(handle) = slot.take() {
            let _ = handle.join(); // dead thread: returns immediately
        }
        *slot = Some(spawn_worker(
            Arc::clone(&self.shared),
            self.config.max_batch_rows,
        ));
    }

    /// Queues a request, returning an id for [`InferenceServer::wait`].
    /// The effective deadline — [`Request::deadline`] or submission time +
    /// [`ServerConfig::default_timeout`] — is fixed here.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (backpressure — retry later), [`ServeError::ShuttingDown`] after
    /// [`InferenceServer::shutdown`] began, [`ServeError::EmptyRequest`]
    /// for zero-row payloads (rejected eagerly, not worth a queue slot).
    pub fn submit(&self, req: Request) -> Result<u64, ServeError> {
        if req.op.rows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        self.supervise();
        // Chaos hook: models a burst that saturated the queue before us.
        if faults::trigger(FaultPoint::QueueSaturation).is_some() {
            return Err(ServeError::QueueFull {
                capacity: self.config.capacity,
            });
        }
        let mut state = lock_state(&self.shared);
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.config.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.config.capacity,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        let deadline = req
            .deadline
            .or_else(|| self.config.default_timeout.map(|t| Instant::now() + t));
        state.outstanding.insert(id, deadline);
        state.queue.push_back(QueuedJob { id, req, deadline });
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// Blocks until the request behind `id` completes and returns its
    /// result. Never blocks past the request's deadline, and never blocks
    /// at all for ids the server did not issue.
    ///
    /// # Errors
    ///
    /// The request's own failure, [`ServeError::WorkerGone`] when the
    /// worker died holding it (and could not be respawned),
    /// [`ServeError::DeadlineExceeded`] past the deadline, or
    /// [`ServeError::UnknownTicket`] for ids never issued or already
    /// consumed.
    pub fn wait(&self, id: u64) -> Result<Matrix, ServeError> {
        self.supervise();
        let mut state = lock_state(&self.shared);
        loop {
            if let Some(result) = state.results.remove(&id) {
                state.outstanding.remove(&id);
                return result;
            }
            let Some(&deadline) = state.outstanding.get(&id) else {
                return Err(ServeError::UnknownTicket { id });
            };
            if state.worker_crashed {
                drop(state);
                self.supervise();
                state = lock_state(&self.shared);
                if state.worker_crashed {
                    // Respawn declined (shutdown with nothing to drain):
                    // this ticket can never resolve, so fail it typed.
                    state.outstanding.remove(&id);
                    return Err(ServeError::WorkerGone);
                }
                continue;
            }
            if !state.worker_alive {
                // Clean worker exit with the ticket unresolved (shutdown
                // raced the waiter).
                state.outstanding.remove(&id);
                return Err(ServeError::WorkerGone);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if d <= now {
                        // Give up: cancel if still queued; if the worker
                        // already holds it, mark it abandoned so the late
                        // result is discarded rather than leaked.
                        let before = state.queue.len();
                        state.queue.retain(|j| j.id != id);
                        let was_queued = state.queue.len() != before;
                        if !was_queued && state.in_flight.contains(&id) {
                            state.abandoned.insert(id);
                        }
                        state.outstanding.remove(&id);
                        state.deadline_shed += 1;
                        return Err(ServeError::DeadlineExceeded);
                    }
                    let (guard, _) = self
                        .shared
                        .done_cv
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = guard;
                }
                None => {
                    state = self
                        .shared
                        .done_cv
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Submit + wait in one blocking call, retrying retryable errors
    /// ([`ServeError::is_retryable`]) per [`ServerConfig::retry`] with
    /// exponential backoff. A [`Request::deadline`] is absolute: the whole
    /// retry loop shares one budget.
    ///
    /// # Errors
    ///
    /// See [`InferenceServer::submit`] and [`InferenceServer::wait`]; the
    /// last error once attempts are exhausted.
    pub fn request(&self, req: Request) -> Result<Matrix, ServeError> {
        let policy = self.config.retry;
        let attempts = policy.max_attempts.max(1);
        let mut failures = 0u32;
        loop {
            let outcome = self.submit(req.clone()).and_then(|id| self.wait(id));
            match outcome {
                Err(e) if e.is_retryable() && failures + 1 < attempts => {
                    failures += 1;
                    std::thread::sleep(policy.delay(failures));
                }
                other => return other,
            }
        }
    }

    /// Stops the worker from picking up new batches (already-running work
    /// finishes). Accepted requests keep queuing until the bounded queue
    /// fills, at which point submissions see [`ServeError::QueueFull`] —
    /// the maintenance lever for load-shedding upstream. Deadlines keep
    /// being enforced while paused.
    pub fn pause(&self) {
        lock_state(&self.shared).paused = true;
    }

    /// Resumes batch processing after [`InferenceServer::pause`].
    pub fn resume(&self) {
        lock_state(&self.shared).paused = false;
        self.shared.work_cv.notify_one();
    }

    /// Liveness counters: worker status, respawns, deadline sheds, queue
    /// depth.
    pub fn health(&self) -> ServerHealth {
        let state = lock_state(&self.shared);
        ServerHealth {
            worker_alive: state.worker_alive,
            respawns: state.respawns,
            deadline_shed: state.deadline_shed,
            pending: state.queue.len(),
        }
    }

    /// Graceful shutdown: stops accepting new work, drains every accepted
    /// request (pause is lifted), joins the worker, and returns counters
    /// totalled across all worker generations. If the worker crashes while
    /// draining, it is respawned until the queue empties; if the drain
    /// cannot complete, leftovers resolve as [`ServeError::ShuttingDown`]
    /// rather than hanging their waiters.
    pub fn shutdown(self) -> EngineStats {
        loop {
            self.supervise();
            self.begin_shutdown();
            let handle = self
                .worker
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            let mut state = lock_state(&self.shared);
            if state.worker_crashed && !state.queue.is_empty() {
                continue; // crashed mid-drain: respawn and keep draining
            }
            while let Some(job) = state.queue.pop_front() {
                publish_result(&mut state, job.id, Err(ServeError::ShuttingDown));
            }
            self.shared.done_cv.notify_all();
            let mut stats = state.stats_done;
            stats.absorb(state.stats_live);
            return stats;
        }
    }

    fn begin_shutdown(&self) {
        let mut state = lock_state(&self.shared);
        state.shutting_down = true;
        state.paused = false;
        self.shared.work_cv.notify_all();
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        let handle = self
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// Saves `model` as a checkpoint at `path` so a server can load it.
/// Re-exported convenience over [`sqvae_core::checkpoint::save_model`].
///
/// # Errors
///
/// See [`sqvae_core::checkpoint::save_model`].
pub fn publish_model(model: &mut Autoencoder, seed: u64, path: &str) -> Result<(), ServeError> {
    checkpoint::save_model(model, seed, path).map_err(|e| ServeError::Checkpoint(e.to_string()))
}

/// Loads a checkpoint header without building the model — a cheap
/// existence/compatibility probe for request routing.
///
/// # Errors
///
/// See [`Checkpoint::load`].
pub fn probe_checkpoint(path: &str) -> Result<Checkpoint, ServeError> {
    Checkpoint::load(path).map_err(|e| ServeError::Checkpoint(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqvae_core::models;

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("sqvae-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn published_model(name: &str, seed: u64) -> (String, Autoencoder) {
        let mut model = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(seed));
        let path = temp_path(name);
        publish_model(&mut model, seed, &path).unwrap();
        (path, model)
    }

    fn rows_bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn coalesced_batch_matches_direct_single_row_calls() {
        let (path, mut direct) = published_model("coalesce.ckpt", 1);
        let mut engine = BatchEngine::new(64);
        let xs: Vec<Matrix> = (0..5)
            .map(|i| Matrix::from_fn(1, 16, |_, c| (i * 16 + c) as f64 / 80.0))
            .collect();
        let tickets: Vec<Ticket> = xs
            .iter()
            .map(|x| {
                engine
                    .submit(Request::new(path.clone(), Op::Reconstruct(x.clone())))
                    .unwrap()
            })
            .collect();
        assert_eq!(engine.pending(), 5);
        // All five coalesce into ONE forward pass...
        assert_eq!(engine.process_next_batch(), 5);
        let stats = engine.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.largest_batch_requests, 5);
        // ...and each result is bit-identical to the direct call.
        for (x, t) in xs.iter().zip(tickets) {
            let served = engine.take_result(t).unwrap().unwrap();
            let want = direct.reconstruct(x).unwrap();
            assert_eq!(rows_bits(&served), rows_bits(&want));
        }
    }

    #[test]
    fn encode_decode_and_sample_round_trip_bit_identically() {
        let (path, mut direct) = published_model("ops.ckpt", 2);
        let mut engine = BatchEngine::new(64);
        let x = Matrix::from_fn(3, 16, |r, c| ((r * 16 + c) as f64).sin());
        let t_enc = engine
            .submit(Request::new(path.clone(), Op::Encode(x.clone())))
            .unwrap();
        let z = Matrix::from_fn(2, direct.latent_dim(), |r, c| (r + c) as f64 * 0.1);
        let t_dec = engine
            .submit(Request::new(path.clone(), Op::Decode(z.clone())))
            .unwrap();
        let t_s1 = engine
            .submit(Request::new(path.clone(), Op::Sample { n: 2, seed: 11 }))
            .unwrap();
        let t_s2 = engine
            .submit(Request::new(path, Op::Sample { n: 3, seed: 12 }))
            .unwrap();
        engine.drain();
        // Mixed kinds cannot share a batch; the two samples can.
        assert_eq!(engine.stats().batches, 3);

        let want_enc = direct.encode(&x).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_enc).unwrap().unwrap()),
            rows_bits(&want_enc)
        );
        let want_dec = direct.decode(&z).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_dec).unwrap().unwrap()),
            rows_bits(&want_dec)
        );
        // Coalesced samples equal direct per-seed sample() calls.
        let want_s1 = direct.sample(2, &mut StdRng::seed_from_u64(11)).unwrap();
        let want_s2 = direct.sample(3, &mut StdRng::seed_from_u64(12)).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_s1).unwrap().unwrap()),
            rows_bits(&want_s1)
        );
        assert_eq!(
            rows_bits(&engine.take_result(t_s2).unwrap().unwrap()),
            rows_bits(&want_s2)
        );
    }

    #[test]
    fn row_budget_splits_oversized_batches() {
        let (path, _) = published_model("budget.ckpt", 3);
        let mut engine = BatchEngine::new(4);
        for _ in 0..3 {
            engine
                .submit(Request::new(
                    path.clone(),
                    Op::Reconstruct(Matrix::filled(3, 16, 0.2)),
                ))
                .unwrap();
        }
        engine.drain();
        // 3 rows each, budget 4: no two requests fit together.
        assert_eq!(engine.stats().batches, 3);
        assert_eq!(engine.stats().largest_batch_requests, 1);
    }

    #[test]
    fn models_stay_warm_across_batches() {
        let (path, _) = published_model("warm.ckpt", 4);
        let mut engine = BatchEngine::new(8);
        for _ in 0..3 {
            engine
                .submit(Request::new(path.clone(), Op::Sample { n: 1, seed: 0 }))
                .unwrap();
            engine.drain();
        }
        assert_eq!(engine.warm_models(), 1);
    }

    #[test]
    fn engine_surfaces_checkpoint_and_empty_errors() {
        let mut engine = BatchEngine::new(8);
        let t = engine
            .submit(Request::new(
                temp_path("does-not-exist.ckpt"),
                Op::Sample { n: 1, seed: 0 },
            ))
            .unwrap();
        engine.drain();
        assert!(matches!(
            engine.take_result(t),
            Some(Err(ServeError::Checkpoint(_)))
        ));
        let err = engine
            .submit(Request::new("x", Op::Sample { n: 0, seed: 0 }))
            .unwrap_err();
        assert_eq!(err, ServeError::EmptyRequest);
    }

    #[test]
    fn bad_payload_fails_its_batch_without_poisoning_other_keys() {
        let (path, mut direct) = published_model("width.ckpt", 5);
        let mut engine = BatchEngine::new(64);
        // Wrong width: 16-feature model fed 8-wide rows.
        let bad = engine
            .submit(Request::new(
                path.clone(),
                Op::Reconstruct(Matrix::filled(1, 8, 0.1)),
            ))
            .unwrap();
        let x = Matrix::filled(1, 16, 0.3);
        let good = engine
            .submit(Request::new(path, Op::Reconstruct(x.clone())))
            .unwrap();
        engine.drain();
        // Different widths → different batch keys → independent fates.
        assert!(matches!(
            engine.take_result(bad),
            Some(Err(ServeError::Model(_)))
        ));
        let served = engine.take_result(good).unwrap().unwrap();
        assert_eq!(
            rows_bits(&served),
            rows_bits(&direct.reconstruct(&x).unwrap())
        );
    }

    #[test]
    fn server_round_trip_matches_direct_calls() {
        let (path, mut direct) = published_model("server.ckpt", 6);
        let server = InferenceServer::start(ServerConfig {
            capacity: 16,
            max_batch_rows: 32,
            ..ServerConfig::default()
        });
        let x = Matrix::from_fn(2, 16, |r, c| (r * 16 + c) as f64 / 32.0);
        let served = server
            .request(Request::new(path.clone(), Op::Reconstruct(x.clone())))
            .unwrap();
        assert_eq!(
            rows_bits(&served),
            rows_bits(&direct.reconstruct(&x).unwrap())
        );
        let sampled = server
            .request(Request::new(path, Op::Sample { n: 3, seed: 9 }))
            .unwrap();
        let want = direct.sample(3, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(rows_bits(&sampled), rows_bits(&want));
        let stats = server.shutdown();
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn bounded_queue_backpressure_and_graceful_drain() {
        let (path, _) = published_model("backpressure.ckpt", 7);
        let server = InferenceServer::start(ServerConfig {
            capacity: 3,
            max_batch_rows: 64,
            ..ServerConfig::default()
        });
        // Paused worker: accepted requests pile up deterministically.
        server.pause();
        let req = |seed: u64| Request::new(path.clone(), Op::Sample { n: 1, seed });
        let ids: Vec<u64> = (0..3).map(|s| server.submit(req(s)).unwrap()).collect();
        assert_eq!(
            server.submit(req(99)).unwrap_err(),
            ServeError::QueueFull { capacity: 3 }
        );
        // Graceful shutdown lifts the pause and drains all three accepted
        // requests before the worker exits.
        let results: Vec<_> = {
            let server = &server;
            std::thread::scope(|scope| {
                let handles: Vec<_> = ids
                    .iter()
                    .map(|&id| scope.spawn(move || server.wait(id)))
                    .collect();
                // Submissions racing shutdown see a typed refusal, never a hang.
                server.resume();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        for r in results {
            assert_eq!(r.unwrap().shape(), (1, 16));
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests, 3);
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains_accepted_work() {
        let (path, _) = published_model("drain.ckpt", 8);
        let server = InferenceServer::start(ServerConfig {
            capacity: 8,
            max_batch_rows: 64,
            ..ServerConfig::default()
        });
        server.pause();
        let id = server
            .submit(Request::new(path.clone(), Op::Sample { n: 2, seed: 1 }))
            .unwrap();
        server.begin_shutdown();
        assert_eq!(
            server
                .submit(Request::new(path, Op::Sample { n: 1, seed: 2 }))
                .unwrap_err(),
            ServeError::ShuttingDown
        );
        // The accepted request still completes.
        assert_eq!(server.wait(id).unwrap().shape(), (2, 16));
        server.shutdown();
    }

    #[test]
    fn wait_on_an_unknown_ticket_is_a_typed_error_not_a_hang() {
        let server = InferenceServer::start(ServerConfig::default());
        assert_eq!(
            server.wait(12345).unwrap_err(),
            ServeError::UnknownTicket { id: 12345 }
        );
        server.shutdown();
    }

    #[test]
    fn a_consumed_ticket_cannot_be_waited_on_twice() {
        let (path, _) = published_model("consume.ckpt", 20);
        let server = InferenceServer::start(ServerConfig::default());
        let id = server
            .submit(Request::new(path, Op::Sample { n: 1, seed: 3 }))
            .unwrap();
        assert!(server.wait(id).is_ok());
        assert_eq!(
            server.wait(id).unwrap_err(),
            ServeError::UnknownTicket { id }
        );
        server.shutdown();
    }

    #[test]
    fn queued_requests_past_their_deadline_are_load_shed() {
        let (path, _) = published_model("deadline.ckpt", 21);
        let server = InferenceServer::start(ServerConfig::default());
        // Paused worker: the request sits in-queue past its (already
        // expired) deadline and must be shed, not served.
        server.pause();
        let req = Request::new(path, Op::Sample { n: 1, seed: 0 }).with_timeout(Duration::ZERO);
        let id = server.submit(req).unwrap();
        assert_eq!(server.wait(id).unwrap_err(), ServeError::DeadlineExceeded);
        assert!(server.health().deadline_shed >= 1);
        server.resume();
        server.shutdown();
    }

    #[test]
    fn default_timeout_covers_requests_without_their_own_deadline() {
        let (path, _) = published_model("default-timeout.ckpt", 22);
        let server = InferenceServer::start(ServerConfig {
            default_timeout: Some(Duration::from_millis(5)),
            ..ServerConfig::default()
        });
        server.pause();
        let id = server
            .submit(Request::new(path, Op::Sample { n: 1, seed: 0 }))
            .unwrap();
        assert_eq!(server.wait(id).unwrap_err(), ServeError::DeadlineExceeded);
        server.resume();
        server.shutdown();
    }

    #[test]
    fn retryable_errors_are_exactly_queue_full_and_worker_gone() {
        assert!(ServeError::QueueFull { capacity: 1 }.is_retryable());
        assert!(ServeError::WorkerGone.is_retryable());
        assert!(!ServeError::DeadlineExceeded.is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::EmptyRequest.is_retryable());
        assert!(!ServeError::UnknownTicket { id: 0 }.is_retryable());
    }

    #[test]
    fn request_retries_ride_out_queue_full_backpressure() {
        let (path, _) = published_model("retry.ckpt", 23);
        let server = InferenceServer::start(ServerConfig {
            capacity: 1,
            retry: RetryPolicy {
                max_attempts: 50,
                backoff: Duration::from_millis(1),
            },
            ..ServerConfig::default()
        });
        // Fill the 1-slot queue while paused so the next request sees
        // QueueFull and has to retry until resume() drains the slot.
        server.pause();
        let parked = server
            .submit(Request::new(path.clone(), Op::Sample { n: 1, seed: 1 }))
            .unwrap();
        let result = std::thread::scope(|scope| {
            let server = &server;
            let path = path.clone();
            let h = scope
                .spawn(move || server.request(Request::new(path, Op::Sample { n: 1, seed: 2 })));
            std::thread::sleep(Duration::from_millis(10));
            server.resume();
            h.join().unwrap()
        });
        assert_eq!(result.unwrap().shape(), (1, 16));
        assert_eq!(server.wait(parked).unwrap().shape(), (1, 16));
        server.shutdown();
    }

    #[test]
    fn health_reports_a_live_unremarkable_server() {
        let server = InferenceServer::start(ServerConfig::default());
        let health = server.health();
        assert!(health.worker_alive);
        assert_eq!(health.respawns, 0);
        assert_eq!(health.pending, 0);
        server.shutdown();
    }

    #[test]
    fn stats_absorb_adds_counts_and_maxes_the_high_water_mark() {
        let mut a = EngineStats {
            requests: 3,
            batches: 2,
            rows: 10,
            largest_batch_requests: 2,
            checkpoint_recoveries: 1,
        };
        a.absorb(EngineStats {
            requests: 5,
            batches: 1,
            rows: 7,
            largest_batch_requests: 4,
            checkpoint_recoveries: 0,
        });
        assert_eq!(
            a,
            EngineStats {
                requests: 8,
                batches: 3,
                rows: 17,
                largest_batch_requests: 4,
                checkpoint_recoveries: 1,
            }
        );
    }

    #[test]
    fn probe_reads_checkpoint_metadata() {
        let (path, direct) = published_model("probe.ckpt", 10);
        let ckpt = probe_checkpoint(&path).unwrap();
        assert_eq!(ckpt.name, direct.name);
        assert_eq!(ckpt.seed, 10);
        assert!(probe_checkpoint(&temp_path("missing.ckpt")).is_err());
    }
}
