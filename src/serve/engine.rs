//! The synchronous batching core each pool worker owns: request queue,
//! coalescer, and warm-model registry.
//!
//! A [`BatchEngine`] is deliberately single-threaded — the pool in
//! [`crate::serve::InferenceServer`] provides the concurrency by running
//! one engine per worker — which keeps the coalescing logic deterministic
//! and directly testable. Because every model call is row-independent and
//! `sample` requests carry their own seeds, the bytes an engine produces
//! depend only on each request's payload, never on how requests were
//! batched or which engine ran them; that is what makes pool results
//! bit-identical across pool sizes.

use super::stats::EngineStats;
use super::{Op, Request, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_core::checkpoint::{self, RecoverySource};
use sqvae_core::Autoencoder;
use sqvae_nn::Matrix;
use std::collections::{HashMap, VecDeque};

/// Handle for retrieving one request's result from a [`BatchEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(pub(super) u64);

struct Job {
    ticket: Ticket,
    model: String,
    op: Op,
}

/// The synchronous batching core: queue, coalescer, and warm-model
/// registry. Single-threaded by design — [`crate::serve::InferenceServer`]
/// provides the concurrency wrapper, one engine per pool worker — which
/// keeps the coalescing logic deterministic and directly testable.
pub struct BatchEngine {
    models: HashMap<String, Autoencoder>,
    queue: VecDeque<Job>,
    results: HashMap<Ticket, Result<Matrix, ServeError>>,
    next_ticket: u64,
    max_batch_rows: usize,
    stats: EngineStats,
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("warm_models", &self.models.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BatchEngine {
    /// An empty engine whose coalesced batches hold at most
    /// `max_batch_rows` rows (sized to the `map_rows` sharding sweet spot).
    ///
    /// # Panics
    ///
    /// Panics when `max_batch_rows == 0`.
    pub fn new(max_batch_rows: usize) -> Self {
        assert!(max_batch_rows > 0, "batch row budget must be positive");
        BatchEngine {
            models: HashMap::new(),
            queue: VecDeque::new(),
            results: HashMap::new(),
            next_ticket: 0,
            max_batch_rows,
            stats: EngineStats::default(),
        }
    }

    /// Queues a request; [`BatchEngine::drain`] (or repeated
    /// [`BatchEngine::process_next_batch`]) executes it.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyRequest`] when the request carries zero rows.
    pub fn submit(&mut self, req: Request) -> Result<Ticket, ServeError> {
        if req.op.rows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.queue.push_back(Job {
            ticket,
            model: req.model,
            op: req.op,
        });
        Ok(ticket)
    }

    /// Number of queued, not-yet-processed requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Removes and returns the result for `ticket`, if its batch has run.
    pub fn take_result(&mut self, ticket: Ticket) -> Option<Result<Matrix, ServeError>> {
        self.results.remove(&ticket)
    }

    /// Processes every queued request.
    pub fn drain(&mut self) {
        while !self.queue.is_empty() {
            self.process_next_batch();
        }
    }

    /// Coalesces the front request with every queued request sharing its
    /// (model, op kind, width) key — up to the row budget — and runs them
    /// as one batched forward pass. Returns the number of requests
    /// completed (0 when the queue is empty).
    pub fn process_next_batch(&mut self) -> usize {
        let Some(first) = self.queue.pop_front() else {
            return 0;
        };
        let key = (first.model.clone(), first.op.kind_and_width());
        let mut batch = vec![first];
        let mut rows = batch[0].op.rows();
        // Pull every same-key job that still fits the row budget; different
        // keys stay queued in order for later batches.
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(job) = self.queue.pop_front() {
            let fits = rows + job.op.rows() <= self.max_batch_rows;
            if fits && job.model == key.0 && job.op.kind_and_width() == key.1 {
                rows += job.op.rows();
                batch.push(job);
            } else {
                kept.push_back(job);
            }
        }
        self.queue = kept;

        let completed = batch.len();
        self.stats.requests += completed;
        self.stats.largest_batch_requests = self.stats.largest_batch_requests.max(completed);
        match self.run_batch(&batch) {
            Ok(outputs) => {
                self.stats.batches += 1;
                self.stats.rows += rows;
                for (job, out) in batch.iter().zip(outputs) {
                    self.results.insert(job.ticket, Ok(out));
                }
            }
            Err(e) => {
                for job in &batch {
                    self.results.insert(job.ticket, Err(e.clone()));
                }
            }
        }
        completed
    }

    /// Runs one coalesced batch: stacks every job's rows, executes a single
    /// model pass, and splits the output back per job.
    fn run_batch(&mut self, batch: &[Job]) -> Result<Vec<Matrix>, ServeError> {
        let path = batch[0].model.clone();
        self.warm_up(&path)?;
        let model = self.models.get_mut(&path).expect("just warmed");

        // Per-request latent draws for Sample jobs: each consumes exactly
        // the RNG stream its direct `sample` call would, so only the decode
        // is shared.
        let inputs: Vec<Matrix> = batch
            .iter()
            .map(|job| match &job.op {
                Op::Encode(m) | Op::Decode(m) | Op::Reconstruct(m) => m.clone(),
                Op::Sample { n, seed } => {
                    model.sample_latent(*n, &mut StdRng::seed_from_u64(*seed))
                }
            })
            .collect();
        let stacked = Matrix::vstack(&inputs)?;
        let output = match &batch[0].op {
            Op::Encode(_) => model.encode(&stacked)?,
            Op::Decode(_) | Op::Sample { .. } => model.decode(&stacked)?,
            Op::Reconstruct(_) => model.reconstruct(&stacked)?,
        };

        let mut outputs = Vec::with_capacity(batch.len());
        let mut start = 0usize;
        for job in batch {
            let n = job.op.rows();
            outputs.push(Matrix::from_fn(n, output.cols(), |r, c| {
                output.get(start + r, c)
            }));
            start += n;
        }
        Ok(outputs)
    }

    /// Loads the checkpoint at `path` into the warm registry (no-op when
    /// already warm), recovering from the `.bak` generation if the primary
    /// file is corrupt. A respawned worker uses this to rebuild the dead
    /// generation's registry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Checkpoint`] when neither the primary nor the backup
    /// loads.
    pub fn warm_up(&mut self, path: &str) -> Result<(), ServeError> {
        if self.models.contains_key(path) {
            return Ok(());
        }
        let (model, source) = checkpoint::load_model_or_recover(path)
            .map_err(|e| ServeError::Checkpoint(e.to_string()))?;
        if source == RecoverySource::Backup {
            self.stats.checkpoint_recoveries += 1;
        }
        self.models.insert(path.to_string(), model);
        Ok(())
    }

    /// Number of models currently held warm.
    pub fn warm_models(&self) -> usize {
        self.models.len()
    }

    /// Checkpoint paths currently warm, sorted for determinism. The pool
    /// snapshots these so a respawned worker can rebuild its registry.
    pub fn warm_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.models.keys().cloned().collect();
        paths.sort();
        paths
    }
}
