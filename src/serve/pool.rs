//! The multi-worker serving engine: a pool of supervised worker threads,
//! each owning a [`BatchEngine`] with its own warm-model registry replica,
//! fed by the sharded dispatcher in [`super::dispatch`].
//!
//! Every PR 8 robustness contract holds **per worker**:
//!
//! * deadlines are enforced in each worker's queue (and in
//!   [`InferenceServer::wait`]);
//! * a panic kills exactly one worker — only the tickets *it* held in
//!   flight fail with [`ServeError::WorkerGone`], its queued-but-unstolen
//!   requests survive, and the supervisor respawns that member
//!   independently on the next client call (warm registry rebuilt from its
//!   checkpoint paths);
//! * [`EngineStats::absorb`] folds counters across worker generations
//!   *and* across pool members, so [`InferenceServer::shutdown`] and
//!   [`InferenceServer::health`] report pool-wide totals.
//!
//! Waiters never poll: ticket completion is signalled through a shared
//! `done` condvar, and each worker sleeps on its **own** `work` condvar so
//! a submission wakes exactly the worker it was routed to.

use super::dispatch;
use super::engine::BatchEngine;
use super::stats::{EngineStats, ServerHealth};
use super::{Request, RetryPolicy, ServeError};
use sqvae_core::faults::{self, FaultPoint};
use sqvae_nn::{Matrix, Threads};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Name of the environment variable that sets the default pool size (same
/// grammar as `SQVAE_THREADS`: `auto`, `off`, or a positive count).
pub const WORKERS_ENV_VAR: &str = "SQVAE_WORKERS";

/// Reads the default worker-pool policy from `SQVAE_WORKERS`: unset or
/// `auto` → [`Threads::Auto`] (one worker per available CPU); `0` or `off`
/// → a single worker; `n` → exactly `n` workers. Unparseable values warn
/// once on stderr and fall back to `auto` (matching the `SQVAE_THREADS` /
/// `SQVAE_BACKEND` typo policy).
pub fn workers_from_env() -> Threads {
    match std::env::var(WORKERS_ENV_VAR) {
        Ok(v) => v.parse().unwrap_or_else(|err: String| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("warning: {WORKERS_ENV_VAR}: {err}; falling back to 'auto'");
            });
            Threads::Auto
        }),
        Err(_) => Threads::Auto,
    }
}

/// Number of pool workers a [`Threads`] policy resolves to.
fn resolve_pool_size(workers: Threads) -> usize {
    match workers {
        Threads::Off => 1,
        Threads::Fixed(n) => n.max(1),
        Threads::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Configuration for [`InferenceServer::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum queued (accepted, unprocessed) requests — summed across the
    /// whole pool — before [`ServeError::QueueFull`] backpressure kicks in.
    pub capacity: usize,
    /// Row budget per coalesced batch (see [`BatchEngine::new`]).
    pub max_batch_rows: usize,
    /// Deadline applied (from submission time) to requests that carry no
    /// [`Request::deadline`] of their own. `None` means such requests wait
    /// indefinitely.
    pub default_timeout: Option<Duration>,
    /// Retry policy for [`InferenceServer::request`].
    pub retry: RetryPolicy,
    /// Worker-pool size policy. Defaults to the `SQVAE_WORKERS` environment
    /// variable ([`workers_from_env`]), which itself defaults to
    /// [`Threads::Auto`] — one worker per available CPU.
    pub workers: Threads,
    /// Queue depth at which a request's home shard is considered "deep" and
    /// the dispatcher spills the request to the least-loaded worker instead
    /// (see [`super::dispatch`]). Values `<= 1` spill on any imbalance;
    /// very large values pin requests to their shard.
    pub spill_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 256,
            max_batch_rows: 64,
            default_timeout: None,
            retry: RetryPolicy::default(),
            workers: workers_from_env(),
            spill_depth: 8,
        }
    }
}

/// An accepted request with its server-assigned id and effective deadline
/// (the request's own, or submission time + default timeout).
struct QueuedJob {
    id: u64,
    req: Request,
    deadline: Option<Instant>,
}

/// Per-worker mutable state: its queue, blast radius, and live counters.
#[derive(Default)]
struct WorkerSlot {
    queue: VecDeque<QueuedJob>,
    /// Ids this worker has stolen and not yet resolved. A panic fails
    /// exactly these with [`ServeError::WorkerGone`].
    in_flight: Vec<u64>,
    /// Checkpoint paths this worker's current generation holds warm; a
    /// respawned generation rebuilds its registry from these.
    warm_paths: Vec<String>,
    /// Live counters of the current generation.
    stats_live: EngineStats,
    /// The worker thread is running (spawned and neither exited nor
    /// crashed).
    alive: bool,
    /// The worker panicked and has not been respawned yet.
    crashed: bool,
}

struct PoolState {
    workers: Vec<WorkerSlot>,
    results: HashMap<u64, Result<Matrix, ServeError>>,
    /// Issued, not-yet-consumed ids → effective deadline. Absence (and no
    /// queued result) means the id was never issued:
    /// [`ServeError::UnknownTicket`].
    outstanding: HashMap<u64, Option<Instant>>,
    /// Ids whose waiter gave up at the deadline while a worker held them;
    /// the worker discards their results instead of publishing.
    abandoned: HashSet<u64>,
    next_id: u64,
    paused: bool,
    shutting_down: bool,
    /// Times the supervisor respawned a crashed worker (pool-wide).
    respawns: u64,
    /// Requests that resolved with [`ServeError::DeadlineExceeded`].
    deadline_shed: u64,
    /// Counters folded in from finished worker generations (pool-wide).
    stats_done: EngineStats,
}

impl PoolState {
    fn new(n_workers: usize) -> Self {
        PoolState {
            workers: (0..n_workers)
                .map(|_| WorkerSlot {
                    alive: true,
                    ..WorkerSlot::default()
                })
                .collect(),
            results: HashMap::new(),
            outstanding: HashMap::new(),
            abandoned: HashSet::new(),
            next_id: 0,
            paused: false,
            shutting_down: false,
            respawns: 0,
            deadline_shed: 0,
            stats_done: EngineStats::default(),
        }
    }

    /// Accepted, unprocessed requests across the whole pool.
    fn pending(&self) -> usize {
        self.workers.iter().map(|s| s.queue.len()).sum()
    }
}

struct Shared {
    state: Mutex<PoolState>,
    /// One wake channel per worker (new work for *that* worker, resume,
    /// shutdown), so a submission never wakes the rest of the pool.
    work_cvs: Vec<Condvar>,
    /// Wakes clients blocked on results.
    done_cv: Condvar,
}

/// Locks the pool state, recovering from poisoning: a panic elsewhere must
/// not abort every subsequent client call. The state is kept consistent
/// across panics by [`PanicGuard`], so the recovered guard is safe to use.
fn lock_state(shared: &Shared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fails worker `w`'s queued requests whose deadline already passed
/// (load-shedding before they waste a batch slot) and wakes their waiters.
fn shed_expired(state: &mut PoolState, shared: &Shared, w: usize) {
    let now = Instant::now();
    let mut shed_any = false;
    let mut kept = VecDeque::with_capacity(state.workers[w].queue.len());
    let drained: Vec<QueuedJob> = state.workers[w].queue.drain(..).collect();
    for job in drained {
        match job.deadline {
            Some(d) if d <= now => {
                state.deadline_shed += 1;
                shed_any = true;
                if !state.abandoned.remove(&job.id) {
                    state
                        .results
                        .insert(job.id, Err(ServeError::DeadlineExceeded));
                }
            }
            _ => kept.push_back(job),
        }
    }
    state.workers[w].queue = kept;
    if shed_any {
        shared.done_cv.notify_all();
    }
}

/// Publishes one result, honouring abandonment: a waiter that timed out
/// while a worker held the id has already consumed its error, so the late
/// result is dropped instead of leaking into `results`.
fn publish_result(state: &mut PoolState, id: u64, result: Result<Matrix, ServeError>) {
    if state.abandoned.remove(&id) {
        return;
    }
    state.results.insert(id, result);
}

/// Whether an outstanding ticket is still held somewhere that can resolve
/// it: a published result, some worker's queue, or some worker's in-flight
/// set. An outstanding ticket held nowhere can never resolve.
fn ticket_reachable(state: &PoolState, id: u64) -> bool {
    state.results.contains_key(&id)
        || state
            .workers
            .iter()
            .any(|s| s.in_flight.contains(&id) || s.queue.iter().any(|j| j.id == id))
}

/// Runs on every exit path of worker `worker`. On a panic (a model bug or
/// an injected [`FaultPoint::WorkerPanic`]) it restores the invariant that
/// every accepted request resolves: all of *this worker's* in-flight ids
/// fail with [`ServeError::WorkerGone`] — other pool members are untouched
/// — its counters fold into the pool total, and the condvars wake so
/// waiters observe the crash immediately.
struct PanicGuard {
    shared: Arc<Shared>,
    worker: usize,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let mut state = lock_state(&self.shared);
        let slot = &mut state.workers[self.worker];
        let in_flight = std::mem::take(&mut slot.in_flight);
        let live = std::mem::take(&mut slot.stats_live);
        slot.alive = false;
        slot.crashed = true;
        for id in in_flight {
            if state.abandoned.remove(&id) {
                continue; // waiter already gave up at its deadline
            }
            state.results.insert(id, Err(ServeError::WorkerGone));
        }
        state.stats_done.absorb(live);
        self.shared.done_cv.notify_all();
        self.shared.work_cvs[self.worker].notify_all();
    }
}

fn spawn_worker(shared: Arc<Shared>, w: usize, max_batch_rows: usize) -> JoinHandle<()> {
    std::thread::spawn(move || run_worker(shared, w, max_batch_rows))
}

fn run_worker(shared: Arc<Shared>, w: usize, max_batch_rows: usize) {
    let _guard = PanicGuard {
        shared: Arc::clone(&shared),
        worker: w,
    };
    let mut engine = BatchEngine::new(max_batch_rows);
    // Respawn path: rebuild the warm registry the dead generation held.
    // Paths that no longer load are skipped here; requests that still
    // target them get the typed checkpoint error per batch.
    let warm: Vec<String> = lock_state(&shared).workers[w].warm_paths.clone();
    for path in &warm {
        let _ = engine.warm_up(path);
    }

    let mut state = lock_state(&shared);
    loop {
        shed_expired(&mut state, &shared, w);
        if (state.workers[w].queue.is_empty() || state.paused) && !state.shutting_down {
            // Sleep until new work — or until this worker's earliest queued
            // deadline, so paused/idle workers still shed expired requests
            // promptly.
            let next_deadline = state.workers[w]
                .queue
                .iter()
                .filter_map(|j| j.deadline)
                .min();
            state = match next_deadline {
                Some(d) => {
                    let now = Instant::now();
                    if d <= now {
                        continue; // shed on the next loop iteration
                    }
                    let (guard, _) = shared.work_cvs[w]
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard
                }
                None => shared.work_cvs[w]
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
            };
            continue;
        }
        if state.workers[w].queue.is_empty() && state.shutting_down {
            break;
        }
        // Steal this worker's queue and run it without the lock, so clients
        // keep submitting (and other workers keep serving) while the batch
        // executes. `in_flight` records the stolen ids: they are the blast
        // radius if this worker panics mid-batch.
        let stolen: Vec<QueuedJob> = state.workers[w].queue.drain(..).collect();
        state.workers[w].in_flight = stolen.iter().map(|j| j.id).collect();
        drop(state);

        // Chaos hook: fires exactly where a real model panic would land —
        // after stealing, with tickets in flight and the lock released. The
        // worker index gives the injector an independent stream per pool
        // member, and lets a filtered plan kill exactly one of them.
        if faults::trigger_for(FaultPoint::WorkerPanic, Some(w)).is_some() {
            panic!("injected worker panic (sqvae::faults)");
        }

        let mut tickets = Vec::with_capacity(stolen.len());
        let mut rejected = Vec::new();
        for job in stolen {
            match engine.submit(job.req) {
                Ok(t) => tickets.push((job.id, t)),
                Err(e) => rejected.push((job.id, e)),
            }
        }
        engine.drain();

        state = lock_state(&shared);
        state.workers[w].in_flight.clear();
        for (id, t) in tickets {
            let result = engine
                .take_result(t)
                .expect("drained engine has every result");
            publish_result(&mut state, id, result);
        }
        for (id, e) in rejected {
            publish_result(&mut state, id, Err(e));
        }
        state.workers[w].warm_paths = engine.warm_paths();
        state.workers[w].stats_live = engine.stats();
        shared.done_cv.notify_all();
    }
    // Clean exit: fold this generation's counters into the pool total.
    state.stats_done.absorb(engine.stats());
    state.workers[w].stats_live = EngineStats::default();
    state.workers[w].alive = false;
    shared.done_cv.notify_all();
}

/// A pool of supervised worker threads serving batched inference, each over
/// its own [`BatchEngine`].
///
/// Submissions are bounded pool-wide by [`ServerConfig::capacity`] and
/// routed by the sharded dispatcher (see [`super::dispatch`]): requests
/// sharing a coalescing key land on the same worker so batching stays
/// effective, spilling to the least-loaded worker when the home shard's
/// queue is deep. Each worker steals its own queue at once, coalesces it,
/// runs it, and publishes results. A worker panic fails only the tickets
/// *that worker* held in flight ([`ServeError::WorkerGone`]); the
/// supervisor respawns crashed members independently on the next client
/// call with their warm-model registries rebuilt from checkpoints.
/// [`InferenceServer::shutdown`] drains everything already accepted before
/// the pool exits.
///
/// Results are bit-identical for any pool size: every request's bytes
/// depend only on its own payload (per-request sample seeds included),
/// never on batch composition or worker placement.
pub struct InferenceServer {
    shared: Arc<Shared>,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    config: ServerConfig,
    pool_size: usize,
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer")
            .field("capacity", &self.config.capacity)
            .field("workers", &self.pool_size)
            .finish()
    }
}

impl InferenceServer {
    /// Spawns the worker pool and returns the handle clients submit to.
    pub fn start(config: ServerConfig) -> Self {
        let pool_size = resolve_pool_size(config.workers);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::new(pool_size)),
            work_cvs: (0..pool_size).map(|_| Condvar::new()).collect(),
            done_cv: Condvar::new(),
        });
        let handles = (0..pool_size)
            .map(|w| Some(spawn_worker(Arc::clone(&shared), w, config.max_batch_rows)))
            .collect();
        InferenceServer {
            shared,
            handles: Mutex::new(handles),
            config,
            pool_size,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.pool_size
    }

    /// Respawns every crashed worker. Called at the entry of each client
    /// operation, so the pool heals on the next touch after a panic without
    /// a dedicated monitor thread — and each member independently: one
    /// crash never restarts its siblings. During shutdown a member is only
    /// respawned when it still has accepted work to drain.
    fn supervise(&self) {
        fn respawn_set(state: &PoolState) -> Vec<usize> {
            state
                .workers
                .iter()
                .enumerate()
                .filter(|(_, s)| s.crashed && (!state.shutting_down || !s.queue.is_empty()))
                .map(|(w, _)| w)
                .collect()
        }
        if respawn_set(&lock_state(&self.shared)).is_empty() {
            return;
        }
        // Lock order everywhere: handle slots, then state.
        let mut slots = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        let to_spawn = {
            let mut state = lock_state(&self.shared);
            let ws = respawn_set(&state);
            for &w in &ws {
                state.workers[w].crashed = false;
                state.workers[w].alive = true;
                state.respawns += 1;
            }
            ws
        };
        for w in to_spawn {
            if let Some(handle) = slots[w].take() {
                let _ = handle.join(); // dead thread: returns immediately
            }
            slots[w] = Some(spawn_worker(
                Arc::clone(&self.shared),
                w,
                self.config.max_batch_rows,
            ));
        }
    }

    /// Queues a request, returning an id for [`InferenceServer::wait`].
    /// The effective deadline — [`Request::deadline`] or submission time +
    /// [`ServerConfig::default_timeout`] — is fixed here, and the dispatcher
    /// routes the request to its home shard (spilling to the least-loaded
    /// worker when that shard's queue is deep).
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the pool-wide bounded queue is at
    /// capacity (backpressure — retry later), [`ServeError::ShuttingDown`]
    /// after [`InferenceServer::shutdown`] began, [`ServeError::EmptyRequest`]
    /// for zero-row payloads (rejected eagerly, not worth a queue slot).
    pub fn submit(&self, req: Request) -> Result<u64, ServeError> {
        if req.op.rows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        self.supervise();
        // Chaos hook: models a burst that saturated the queue before us.
        if faults::trigger(FaultPoint::QueueSaturation).is_some() {
            return Err(ServeError::QueueFull {
                capacity: self.config.capacity,
            });
        }
        let mut state = lock_state(&self.shared);
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.pending() >= self.config.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.config.capacity,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        let deadline = req
            .deadline
            .or_else(|| self.config.default_timeout.map(|t| Instant::now() + t));
        state.outstanding.insert(id, deadline);
        let depths: Vec<usize> = state.workers.iter().map(|s| s.queue.len()).collect();
        let target = dispatch::route(&req.model, &req.op, &depths, self.config.spill_depth);
        state.workers[target]
            .queue
            .push_back(QueuedJob { id, req, deadline });
        self.shared.work_cvs[target].notify_one();
        Ok(id)
    }

    /// Blocks until the request behind `id` completes and returns its
    /// result. Never blocks past the request's deadline, and never blocks
    /// at all for ids the server did not issue. Completion is signalled
    /// through a condvar — no polling, so latency is not quantized by any
    /// sleep interval.
    ///
    /// # Errors
    ///
    /// The request's own failure, [`ServeError::WorkerGone`] when the
    /// worker holding it died (and could not be respawned),
    /// [`ServeError::DeadlineExceeded`] past the deadline, or
    /// [`ServeError::UnknownTicket`] for ids never issued or already
    /// consumed.
    pub fn wait(&self, id: u64) -> Result<Matrix, ServeError> {
        self.supervise();
        let mut state = lock_state(&self.shared);
        loop {
            if let Some(result) = state.results.remove(&id) {
                state.outstanding.remove(&id);
                return result;
            }
            let Some(&deadline) = state.outstanding.get(&id) else {
                return Err(ServeError::UnknownTicket { id });
            };
            if state.workers.iter().any(|s| s.crashed) {
                drop(state);
                self.supervise();
                state = lock_state(&self.shared);
                if state.workers.iter().any(|s| s.crashed) {
                    // Some member's respawn was declined (shutdown with
                    // nothing of its own to drain). A ticket held nowhere
                    // can never resolve: fail it typed. Tickets held by
                    // surviving members keep waiting below.
                    if !ticket_reachable(&state, id) {
                        state.outstanding.remove(&id);
                        return Err(ServeError::WorkerGone);
                    }
                } else {
                    continue; // pool healed: re-check results immediately
                }
            } else if state.workers.iter().all(|s| !s.alive) {
                // Clean pool exit with the ticket unresolved (shutdown
                // raced the waiter).
                state.outstanding.remove(&id);
                return Err(ServeError::WorkerGone);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if d <= now {
                        // Give up: cancel if still queued; if a worker
                        // already holds it, mark it abandoned so the late
                        // result is discarded rather than leaked.
                        let mut was_queued = false;
                        for slot in &mut state.workers {
                            let before = slot.queue.len();
                            slot.queue.retain(|j| j.id != id);
                            was_queued |= slot.queue.len() != before;
                        }
                        if !was_queued && state.workers.iter().any(|s| s.in_flight.contains(&id)) {
                            state.abandoned.insert(id);
                        }
                        state.outstanding.remove(&id);
                        state.deadline_shed += 1;
                        return Err(ServeError::DeadlineExceeded);
                    }
                    let (guard, _) = self
                        .shared
                        .done_cv
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = guard;
                }
                None => {
                    state = self
                        .shared
                        .done_cv
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Submit + wait in one blocking call, retrying retryable errors
    /// ([`ServeError::is_retryable`]) per [`ServerConfig::retry`] with
    /// exponential backoff. A [`Request::deadline`] is absolute: the whole
    /// retry loop shares one budget.
    ///
    /// # Errors
    ///
    /// See [`InferenceServer::submit`] and [`InferenceServer::wait`]; the
    /// last error once attempts are exhausted.
    pub fn request(&self, req: Request) -> Result<Matrix, ServeError> {
        let policy = self.config.retry;
        let attempts = policy.max_attempts.max(1);
        let mut failures = 0u32;
        loop {
            let outcome = self.submit(req.clone()).and_then(|id| self.wait(id));
            match outcome {
                Err(e) if e.is_retryable() && failures + 1 < attempts => {
                    failures += 1;
                    std::thread::sleep(policy.delay(failures));
                }
                other => return other,
            }
        }
    }

    /// Stops every worker from picking up new batches (already-running work
    /// finishes). Accepted requests keep queuing until the pool-wide
    /// bounded queue fills, at which point submissions see
    /// [`ServeError::QueueFull`] — the maintenance lever for load-shedding
    /// upstream. Deadlines keep being enforced while paused.
    pub fn pause(&self) {
        lock_state(&self.shared).paused = true;
    }

    /// Resumes batch processing after [`InferenceServer::pause`].
    pub fn resume(&self) {
        lock_state(&self.shared).paused = false;
        for cv in &self.shared.work_cvs {
            cv.notify_one();
        }
    }

    /// Liveness counters aggregated across the pool: worker status, total
    /// respawns, deadline sheds, pool-wide queue depth.
    pub fn health(&self) -> ServerHealth {
        let state = lock_state(&self.shared);
        ServerHealth {
            worker_alive: state.workers.iter().all(|s| s.alive),
            workers: state.workers.len(),
            respawns: state.respawns,
            deadline_shed: state.deadline_shed,
            pending: state.pending(),
        }
    }

    /// Graceful shutdown: stops accepting new work, drains every accepted
    /// request on every worker (pause is lifted), joins the pool, and
    /// returns counters totalled across all members and generations. If a
    /// worker crashes while draining, it is respawned until its queue
    /// empties; if the drain cannot complete, leftovers resolve as
    /// [`ServeError::ShuttingDown`] rather than hanging their waiters.
    pub fn shutdown(self) -> EngineStats {
        loop {
            self.supervise();
            self.begin_shutdown();
            let taken: Vec<JoinHandle<()>> = {
                let mut slots = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
                slots.iter_mut().filter_map(|s| s.take()).collect()
            };
            for handle in taken {
                let _ = handle.join();
            }
            let mut state = lock_state(&self.shared);
            if state
                .workers
                .iter()
                .any(|s| s.crashed && !s.queue.is_empty())
            {
                continue; // crashed mid-drain: respawn and keep draining
            }
            for w in 0..state.workers.len() {
                while let Some(job) = state.workers[w].queue.pop_front() {
                    publish_result(&mut state, job.id, Err(ServeError::ShuttingDown));
                }
            }
            self.shared.done_cv.notify_all();
            let mut stats = state.stats_done;
            for slot in &state.workers {
                stats.absorb(slot.stats_live);
            }
            return stats;
        }
    }

    pub(super) fn begin_shutdown(&self) {
        let mut state = lock_state(&self.shared);
        state.shutting_down = true;
        state.paused = false;
        for cv in &self.shared.work_cvs {
            cv.notify_all();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        let taken: Vec<JoinHandle<()>> = {
            let mut slots = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
            slots.iter_mut().filter_map(|s| s.take()).collect()
        };
        for handle in taken {
            let _ = handle.join();
        }
    }
}
