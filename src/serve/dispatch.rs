//! Request routing for the worker pool: sharded dispatch with least-loaded
//! spillover.
//!
//! The dispatcher's job is to pick which pool worker serves a request. Two
//! forces pull in opposite directions:
//!
//! * **Coalescing.** The per-worker [`crate::serve::BatchEngine`] merges
//!   queued requests sharing a (model, op kind, width) key into one batched
//!   forward pass. Scattering same-key requests across workers splits those
//!   batches, so the dispatcher *shards*: every request hashes its
//!   coalescing key to a home worker, and same-key traffic lands together.
//! * **Utilization.** Hard sharding alone leaves workers idle whenever the
//!   traffic mix has fewer hot keys than the pool has workers. So when a
//!   request's home shard is already deep — at least
//!   [`crate::serve::ServerConfig::spill_depth`] requests queued — the
//!   dispatcher *spills* it to the least-loaded worker instead (ties break
//!   to the lowest index). A deep home queue already guarantees a full
//!   coalesced batch there; the marginal request gains more from an idle
//!   worker than from growing a batch past the row budget.
//!
//! Routing never affects result bytes — every request's output depends only
//! on its own payload (per-request sample seeds included) — so the shard
//! map is pure placement policy: it decides wall-clock, not answers.

use super::Op;

/// FNV-1a over the request's coalescing key. Deterministic across runs and
/// platforms (unlike `RandomState` hashing), so a request set always maps
/// to the same shards — which the determinism and chaos tests rely on.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The home shard for a request on `model` with operation `op` in a pool of
/// `n_workers`: a deterministic hash of the coalescing key (model path, op
/// kind, payload width), so same-key requests — exactly the ones the engine
/// can merge into one batch — share a worker.
///
/// Exposed so tests (and operators reasoning about placement) can predict
/// where traffic lands; the live dispatcher may still divert a request to
/// the least-loaded worker when this shard's queue is deep.
///
/// # Panics
///
/// Panics when `n_workers == 0`.
pub fn shard_index(model: &str, op: &Op, n_workers: usize) -> usize {
    assert!(n_workers > 0, "a pool has at least one worker");
    let (kind, width) = op.kind_and_width();
    let key = model.bytes().chain([kind]).chain(width.to_le_bytes());
    (fnv1a(key) % n_workers as u64) as usize
}

/// Picks the worker for a request given the current queue depths: the home
/// shard while its queue is shallower than `spill_depth`, otherwise the
/// least-loaded worker (lowest index on ties; the home shard wins ties it
/// participates in, preserving coalescing when spilling buys nothing).
pub(super) fn route(model: &str, op: &Op, depths: &[usize], spill_depth: usize) -> usize {
    let shard = shard_index(model, op, depths.len());
    if depths.len() == 1 || depths[shard] < spill_depth.max(1) {
        return shard;
    }
    let min = *depths.iter().min().expect("non-empty pool");
    if depths[shard] == min {
        return shard;
    }
    depths
        .iter()
        .position(|&d| d == min)
        .expect("min exists in depths")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqvae_nn::Matrix;

    fn sample_op(seed: u64) -> Op {
        Op::Sample { n: 2, seed }
    }

    #[test]
    fn sharding_is_deterministic_and_seed_independent() {
        let a = shard_index("m.ckpt", &sample_op(1), 4);
        let b = shard_index("m.ckpt", &sample_op(999), 4);
        assert_eq!(a, b, "coalescable requests must share a shard");
        assert_eq!(a, shard_index("m.ckpt", &sample_op(1), 4));
        assert!(a < 4);
    }

    #[test]
    fn distinct_keys_spread_over_a_large_pool() {
        // 64 distinct models over 16 shards: FNV should touch many shards.
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| shard_index(&format!("model-{i}.ckpt"), &sample_op(0), 16))
            .collect();
        assert!(
            hit.len() >= 8,
            "hash clumped: only {} shards hit",
            hit.len()
        );
    }

    #[test]
    fn op_kind_and_width_are_part_of_the_key() {
        let m = Matrix::filled(1, 16, 0.0);
        let ops = [
            Op::Encode(m.clone()),
            Op::Decode(m.clone()),
            Op::Reconstruct(m.clone()),
            Op::Reconstruct(Matrix::filled(1, 8, 0.0)),
            sample_op(0),
        ];
        // Not all five may land apart in a small pool, but the hash must at
        // least depend on the kind/width bytes.
        let shards: Vec<usize> = ops.iter().map(|op| shard_index("m", op, 64)).collect();
        let distinct: std::collections::HashSet<usize> = shards.iter().copied().collect();
        assert!(distinct.len() > 1, "kind/width ignored by the shard key");
    }

    #[test]
    fn shallow_home_queue_wins_over_idle_workers() {
        let op = sample_op(0);
        let home = shard_index("m", &op, 4);
        let mut depths = [0usize; 4];
        depths[(home + 1) % 4] = 0; // someone idle
        depths[home] = 3; // below the spill threshold
        assert_eq!(route("m", &op, &depths, 4), home);
    }

    #[test]
    fn deep_home_queue_spills_to_the_least_loaded_worker() {
        let op = sample_op(0);
        let home = shard_index("m", &op, 4);
        let mut depths = [7usize; 4];
        depths[home] = 10;
        let lightest = (home + 2) % 4;
        depths[lightest] = 1;
        assert_eq!(route("m", &op, &depths, 4), lightest);
    }

    #[test]
    fn spilling_prefers_home_on_ties() {
        let op = sample_op(0);
        let home = shard_index("m", &op, 4);
        // Everyone equally deep: spilling buys nothing, stay home and
        // coalesce.
        assert_eq!(route("m", &op, &[9, 9, 9, 9], 4), home);
    }

    #[test]
    fn single_worker_pools_never_consult_depths() {
        assert_eq!(route("m", &sample_op(0), &[1000], 1), 0);
    }
}
