//! Observability counters for the serving stack: per-engine work counters
//! ([`EngineStats`], merged across worker generations and pool members via
//! [`EngineStats::absorb`]) and the pool-level liveness snapshot
//! ([`ServerHealth`]).

/// Counters describing what an engine did, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests completed (successfully or with an error).
    pub requests: usize,
    /// Model forward passes executed. `requests > batches` means
    /// coalescing merged work.
    pub batches: usize,
    /// Total rows pushed through model forward passes.
    pub rows: usize,
    /// Largest number of requests merged into one batch.
    pub largest_batch_requests: usize,
    /// Model loads that had to fall back to a checkpoint's `.bak`
    /// generation because the primary file was corrupt or missing.
    pub checkpoint_recoveries: usize,
}

impl EngineStats {
    /// Folds another generation's counters into this one. The server uses
    /// this to report totals across worker respawns and across every pool
    /// member; counts add, the largest-batch high-water mark takes the max.
    pub fn absorb(&mut self, other: EngineStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.rows += other.rows;
        self.largest_batch_requests = self
            .largest_batch_requests
            .max(other.largest_batch_requests);
        self.checkpoint_recoveries += other.checkpoint_recoveries;
    }
}

/// A snapshot of the server's liveness counters (see
/// [`crate::serve::InferenceServer::health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerHealth {
    /// Every worker thread in the pool is currently running.
    pub worker_alive: bool,
    /// Number of worker threads the pool was started with.
    pub workers: usize,
    /// Times the supervisor respawned a crashed worker (summed across the
    /// pool — each member is supervised independently).
    pub respawns: u64,
    /// Requests that resolved with
    /// [`crate::serve::ServeError::DeadlineExceeded`].
    pub deadline_shed: u64,
    /// Accepted requests not yet processed, summed over every worker's
    /// queue.
    pub pending: usize,
}
