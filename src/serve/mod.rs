//! Long-running batched inference over checkpointed models.
//!
//! The training pipeline produces checkpoints ([`sqvae_core::checkpoint`]);
//! this module serves them. Three layers:
//!
//! * [`BatchEngine`] (`engine`) — a synchronous core: a warm-model registry
//!   keyed by checkpoint path, a request queue, and a coalescer that merges
//!   single `encode` / `decode` / `sample` / `reconstruct` requests
//!   targeting the same model into one batched forward pass. Every model
//!   call is row-independent (the quantum layers shard batch rows via
//!   `map_rows` with a bit-identical guarantee), so a coalesced batch
//!   returns exactly the bytes the same requests would produce one at a
//!   time.
//! * The dispatcher (`dispatch`) — routes each request to a home worker by
//!   hashing its coalescing key (**sharding**: same-key requests land
//!   together so batches stay fat), spilling to the least-loaded worker
//!   when the home shard's queue is at least
//!   [`ServerConfig::spill_depth`] deep (**spillover**: a deep home queue
//!   already guarantees a full batch, so the marginal request gains more
//!   from an idle worker).
//! * [`InferenceServer`] (`pool`) — a pool of [`ServerConfig::workers`]
//!   worker threads (default: the `SQVAE_WORKERS` environment variable,
//!   falling back to one per CPU), each wrapping its own engine with its
//!   own warm-model registry replica: bounded pool-wide submission queue
//!   (typed [`ServeError::QueueFull`] backpressure), blocking
//!   [`InferenceServer::request`] round trips, a maintenance
//!   [`InferenceServer::pause`], and a graceful
//!   [`InferenceServer::shutdown`] that drains every accepted request
//!   before the pool exits.
//!
//! ## Fault tolerance
//!
//! The server is built to keep its core invariant — **every accepted
//! request resolves**, with a result or a typed error, never a hang —
//! under the failures a long-running deployment actually sees, and each
//! guarantee holds per pool worker:
//!
//! * **Deadlines.** A request can carry its own [`Request::deadline`], or
//!   inherit [`ServerConfig::default_timeout`]. Expired requests are
//!   load-shed in-queue (before they waste a batch slot) and
//!   [`InferenceServer::wait`] gives up at the deadline — both surface as
//!   [`ServeError::DeadlineExceeded`].
//! * **Worker supervision.** A panic in a worker (a model bug, or an
//!   injected [`sqvae_core::faults::FaultPoint::WorkerPanic`]) fails only
//!   the tickets *that worker* held in flight with
//!   [`ServeError::WorkerGone`] — the rest of the pool keeps serving — and
//!   the supervisor respawns the crashed member independently on the next
//!   client call, rebuilding its warm-model registry from the checkpoint
//!   paths the dead generation had loaded. Queued-but-unstolen requests
//!   survive the crash untouched.
//! * **Client retries.** [`InferenceServer::request`] retries retryable
//!   errors ([`ServeError::QueueFull`], [`ServeError::WorkerGone`]) per
//!   the [`ServerConfig::retry`] policy with exponential backoff.
//! * **Poison recovery.** Every lock acquisition recovers from mutex
//!   poisoning, so one panic never cascades into aborts elsewhere.
//! * **Checkpoint healing.** Models load through
//!   [`sqvae_core::checkpoint::load_model_or_recover`], so a corrupted
//!   checkpoint file falls back to its `.bak` generation instead of
//!   failing every request that targets it.
//!
//! ## Determinism
//!
//! Results are **bit-identical for any pool size** (and any
//! [`ServerConfig::spill_depth`]): every request's bytes depend only on
//! its own payload, never on batch composition or worker placement.
//! Sampling stays deterministic under coalescing because each `sample`
//! request carries its own seed: the engine draws that request's latent
//! rows from a fresh `StdRng::seed_from_u64(seed)` — the same stream a
//! direct [`sqvae_core::Autoencoder::sample`] call would consume — and only
//! the decoder pass is shared. Routing therefore decides wall-clock, not
//! answers.
//!
//! ## Example
//!
//! ```no_run
//! use sqvae::serve::{InferenceServer, Op, Request, ServerConfig};
//! use sqvae_nn::Threads;
//!
//! # fn main() -> Result<(), sqvae::serve::ServeError> {
//! let server = InferenceServer::start(ServerConfig {
//!     workers: Threads::Fixed(4), // or leave the SQVAE_WORKERS default
//!     ..ServerConfig::default()
//! });
//! let sampled = server.request(Request::new("model.ckpt", Op::Sample { n: 4, seed: 7 }))?;
//! println!("sampled {} molecules-worth of features", sampled.rows());
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod dispatch;
mod engine;
mod pool;
mod stats;

pub use dispatch::shard_index;
pub use engine::{BatchEngine, Ticket};
pub use pool::{workers_from_env, InferenceServer, ServerConfig, WORKERS_ENV_VAR};
pub use stats::{EngineStats, ServerHealth};

use sqvae_core::checkpoint::{self, Checkpoint};
use sqvae_core::Autoencoder;
use sqvae_nn::{Matrix, NnError};
use std::time::{Duration, Instant};

/// Errors surfaced by the inference service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submission queue is at capacity; retry after in-flight work
    /// drains. This is the backpressure signal — the server never buffers
    /// unboundedly.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The worker thread holding this request is gone (panicked) before
    /// answering it.
    WorkerGone,
    /// A request carried no rows to process (`n == 0` or an empty matrix).
    EmptyRequest,
    /// The referenced checkpoint could not be loaded (message from
    /// [`sqvae_core::checkpoint::CheckpointError`]).
    Checkpoint(String),
    /// The model rejected the payload (shape mismatch etc.).
    Model(NnError),
    /// The request's deadline passed before a result was produced: either
    /// load-shed in-queue or abandoned by [`InferenceServer::wait`].
    DeadlineExceeded,
    /// [`InferenceServer::wait`] was asked about an id the server never
    /// issued (or whose result was already consumed).
    UnknownTicket {
        /// The unrecognised ticket id.
        id: u64,
    },
}

impl ServeError {
    /// Whether retrying the same request may succeed: transient conditions
    /// ([`ServeError::QueueFull`] backpressure, a [`ServeError::WorkerGone`]
    /// crash the supervisor heals) are retryable; payload and deadline
    /// errors are not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::QueueFull { .. } | ServeError::WorkerGone)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue is full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerGone => write!(f, "worker thread exited before answering"),
            ServeError::EmptyRequest => write!(f, "request carries no rows"),
            ServeError::Checkpoint(msg) => write!(f, "checkpoint load failed: {msg}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline passed before the request was served")
            }
            ServeError::UnknownTicket { id } => {
                write!(f, "ticket {id} was never issued or already consumed")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Model(e)
    }
}

/// One inference operation on a model.
#[derive(Debug, Clone)]
pub enum Op {
    /// Map data rows to latent codes (VAEs: the posterior mean).
    Encode(Matrix),
    /// Decode latent rows into data space.
    Decode(Matrix),
    /// Evaluation-mode round trip (encode → decode).
    Reconstruct(Matrix),
    /// Draw `n` fresh samples by decoding `z ~ N(0, I)` drawn from
    /// `StdRng::seed_from_u64(seed)` — bit-identical to a direct
    /// [`sqvae_core::Autoencoder::sample`] call with that RNG.
    Sample {
        /// Number of samples to draw.
        n: usize,
        /// Seed for this request's latent draws.
        seed: u64,
    },
}

impl Op {
    /// Number of output rows this op will produce (and the coalescer's
    /// row-budget cost).
    fn rows(&self) -> usize {
        match self {
            Op::Encode(m) | Op::Decode(m) | Op::Reconstruct(m) => m.rows(),
            Op::Sample { n, .. } => *n,
        }
    }

    /// Coalescing key: ops merge into one batch only when the kind and the
    /// payload width agree (widths always agree for same-kind ops on one
    /// model, but a mis-sized payload must not poison its batchmates). The
    /// dispatcher hashes the same key to pick a request's home shard.
    fn kind_and_width(&self) -> (u8, usize) {
        match self {
            Op::Encode(m) => (0, m.cols()),
            Op::Decode(m) => (1, m.cols()),
            Op::Reconstruct(m) => (2, m.cols()),
            Op::Sample { .. } => (3, 0),
        }
    }
}

/// A request: which checkpoint to serve, and what to do.
#[derive(Debug, Clone)]
pub struct Request {
    /// Path of the checkpoint file; each pool worker loads it on first use
    /// and keeps the model warm for subsequent requests.
    pub model: String,
    /// The operation to run.
    pub op: Op,
    /// Absolute deadline: past this instant the request is load-shed (if
    /// still queued) or abandoned (if in flight) with
    /// [`ServeError::DeadlineExceeded`]. `None` falls back to
    /// [`ServerConfig::default_timeout`], counted from submission.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A request with no deadline of its own (the server's
    /// [`ServerConfig::default_timeout`] still applies, if set).
    pub fn new(model: impl Into<String>, op: Op) -> Self {
        Request {
            model: model.into(),
            op,
            deadline: None,
        }
    }

    /// Sets an absolute deadline `timeout` from now. The deadline survives
    /// [`InferenceServer::request`] retries — the budget covers the whole
    /// round trip, not each attempt.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// Client-side retry policy for [`InferenceServer::request`]: retryable
/// errors (see [`ServeError::is_retryable`]) are retried up to
/// `max_attempts` total attempts with exponential backoff (`backoff`,
/// doubling per failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, counting the first (`1` disables retries).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further failure.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, errors surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Backoff before retry number `attempt` (1-based): `backoff << (attempt - 1)`.
    fn delay(&self, attempt: u32) -> Duration {
        self.backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

/// Saves `model` as a checkpoint at `path` so a server can load it.
/// Re-exported convenience over [`sqvae_core::checkpoint::save_model`].
///
/// # Errors
///
/// See [`sqvae_core::checkpoint::save_model`].
pub fn publish_model(model: &mut Autoencoder, seed: u64, path: &str) -> Result<(), ServeError> {
    checkpoint::save_model(model, seed, path).map_err(|e| ServeError::Checkpoint(e.to_string()))
}

/// Loads a checkpoint header without building the model — a cheap
/// existence/compatibility probe for request routing.
///
/// # Errors
///
/// See [`Checkpoint::load`].
pub fn probe_checkpoint(path: &str) -> Result<Checkpoint, ServeError> {
    Checkpoint::load(path).map_err(|e| ServeError::Checkpoint(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqvae_core::models;
    use sqvae_nn::Threads;

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("sqvae-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn published_model(name: &str, seed: u64) -> (String, Autoencoder) {
        let mut model = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(seed));
        let path = temp_path(name);
        publish_model(&mut model, seed, &path).unwrap();
        (path, model)
    }

    fn rows_bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn coalesced_batch_matches_direct_single_row_calls() {
        let (path, mut direct) = published_model("coalesce.ckpt", 1);
        let mut engine = BatchEngine::new(64);
        let xs: Vec<Matrix> = (0..5)
            .map(|i| Matrix::from_fn(1, 16, |_, c| (i * 16 + c) as f64 / 80.0))
            .collect();
        let tickets: Vec<Ticket> = xs
            .iter()
            .map(|x| {
                engine
                    .submit(Request::new(path.clone(), Op::Reconstruct(x.clone())))
                    .unwrap()
            })
            .collect();
        assert_eq!(engine.pending(), 5);
        // All five coalesce into ONE forward pass...
        assert_eq!(engine.process_next_batch(), 5);
        let stats = engine.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.largest_batch_requests, 5);
        // ...and each result is bit-identical to the direct call.
        for (x, t) in xs.iter().zip(tickets) {
            let served = engine.take_result(t).unwrap().unwrap();
            let want = direct.reconstruct(x).unwrap();
            assert_eq!(rows_bits(&served), rows_bits(&want));
        }
    }

    #[test]
    fn encode_decode_and_sample_round_trip_bit_identically() {
        let (path, mut direct) = published_model("ops.ckpt", 2);
        let mut engine = BatchEngine::new(64);
        let x = Matrix::from_fn(3, 16, |r, c| ((r * 16 + c) as f64).sin());
        let t_enc = engine
            .submit(Request::new(path.clone(), Op::Encode(x.clone())))
            .unwrap();
        let z = Matrix::from_fn(2, direct.latent_dim(), |r, c| (r + c) as f64 * 0.1);
        let t_dec = engine
            .submit(Request::new(path.clone(), Op::Decode(z.clone())))
            .unwrap();
        let t_s1 = engine
            .submit(Request::new(path.clone(), Op::Sample { n: 2, seed: 11 }))
            .unwrap();
        let t_s2 = engine
            .submit(Request::new(path, Op::Sample { n: 3, seed: 12 }))
            .unwrap();
        engine.drain();
        // Mixed kinds cannot share a batch; the two samples can.
        assert_eq!(engine.stats().batches, 3);

        let want_enc = direct.encode(&x).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_enc).unwrap().unwrap()),
            rows_bits(&want_enc)
        );
        let want_dec = direct.decode(&z).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_dec).unwrap().unwrap()),
            rows_bits(&want_dec)
        );
        // Coalesced samples equal direct per-seed sample() calls.
        let want_s1 = direct.sample(2, &mut StdRng::seed_from_u64(11)).unwrap();
        let want_s2 = direct.sample(3, &mut StdRng::seed_from_u64(12)).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_s1).unwrap().unwrap()),
            rows_bits(&want_s1)
        );
        assert_eq!(
            rows_bits(&engine.take_result(t_s2).unwrap().unwrap()),
            rows_bits(&want_s2)
        );
    }

    #[test]
    fn row_budget_splits_oversized_batches() {
        let (path, _) = published_model("budget.ckpt", 3);
        let mut engine = BatchEngine::new(4);
        for _ in 0..3 {
            engine
                .submit(Request::new(
                    path.clone(),
                    Op::Reconstruct(Matrix::filled(3, 16, 0.2)),
                ))
                .unwrap();
        }
        engine.drain();
        // 3 rows each, budget 4: no two requests fit together.
        assert_eq!(engine.stats().batches, 3);
        assert_eq!(engine.stats().largest_batch_requests, 1);
    }

    #[test]
    fn models_stay_warm_across_batches() {
        let (path, _) = published_model("warm.ckpt", 4);
        let mut engine = BatchEngine::new(8);
        for _ in 0..3 {
            engine
                .submit(Request::new(path.clone(), Op::Sample { n: 1, seed: 0 }))
                .unwrap();
            engine.drain();
        }
        assert_eq!(engine.warm_models(), 1);
    }

    #[test]
    fn engine_surfaces_checkpoint_and_empty_errors() {
        let mut engine = BatchEngine::new(8);
        let t = engine
            .submit(Request::new(
                temp_path("does-not-exist.ckpt"),
                Op::Sample { n: 1, seed: 0 },
            ))
            .unwrap();
        engine.drain();
        assert!(matches!(
            engine.take_result(t),
            Some(Err(ServeError::Checkpoint(_)))
        ));
        let err = engine
            .submit(Request::new("x", Op::Sample { n: 0, seed: 0 }))
            .unwrap_err();
        assert_eq!(err, ServeError::EmptyRequest);
    }

    #[test]
    fn bad_payload_fails_its_batch_without_poisoning_other_keys() {
        let (path, mut direct) = published_model("width.ckpt", 5);
        let mut engine = BatchEngine::new(64);
        // Wrong width: 16-feature model fed 8-wide rows.
        let bad = engine
            .submit(Request::new(
                path.clone(),
                Op::Reconstruct(Matrix::filled(1, 8, 0.1)),
            ))
            .unwrap();
        let x = Matrix::filled(1, 16, 0.3);
        let good = engine
            .submit(Request::new(path, Op::Reconstruct(x.clone())))
            .unwrap();
        engine.drain();
        // Different widths → different batch keys → independent fates.
        assert!(matches!(
            engine.take_result(bad),
            Some(Err(ServeError::Model(_)))
        ));
        let served = engine.take_result(good).unwrap().unwrap();
        assert_eq!(
            rows_bits(&served),
            rows_bits(&direct.reconstruct(&x).unwrap())
        );
    }

    #[test]
    fn server_round_trip_matches_direct_calls() {
        let (path, mut direct) = published_model("server.ckpt", 6);
        let server = InferenceServer::start(ServerConfig {
            capacity: 16,
            max_batch_rows: 32,
            ..ServerConfig::default()
        });
        let x = Matrix::from_fn(2, 16, |r, c| (r * 16 + c) as f64 / 32.0);
        let served = server
            .request(Request::new(path.clone(), Op::Reconstruct(x.clone())))
            .unwrap();
        assert_eq!(
            rows_bits(&served),
            rows_bits(&direct.reconstruct(&x).unwrap())
        );
        let sampled = server
            .request(Request::new(path, Op::Sample { n: 3, seed: 9 }))
            .unwrap();
        let want = direct.sample(3, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(rows_bits(&sampled), rows_bits(&want));
        let stats = server.shutdown();
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn a_multi_worker_pool_round_trips_and_reports_its_size() {
        let (path, mut direct) = published_model("pool3.ckpt", 30);
        let server = InferenceServer::start(ServerConfig {
            workers: Threads::Fixed(3),
            ..ServerConfig::default()
        });
        assert_eq!(server.workers(), 3);
        let health = server.health();
        assert!(health.worker_alive);
        assert_eq!(health.workers, 3);
        let sampled = server
            .request(Request::new(path, Op::Sample { n: 2, seed: 31 }))
            .unwrap();
        let want = direct.sample(2, &mut StdRng::seed_from_u64(31)).unwrap();
        assert_eq!(rows_bits(&sampled), rows_bits(&want));
        server.shutdown();
    }

    #[test]
    fn spillover_routing_does_not_change_result_bytes() {
        // Same request set through two 4-worker pools: one that pins
        // requests to their home shard (huge spill_depth) and one that
        // spills on any queue imbalance (spill_depth 1). Placement differs;
        // bytes must not.
        let paths: Vec<String> = (0..3)
            .map(|i| published_model(&format!("spill-{i}.ckpt"), 40 + i).0)
            .collect();
        let reqs = || -> Vec<Request> {
            let mut v = Vec::new();
            for (i, p) in paths.iter().enumerate() {
                for j in 0..4u64 {
                    v.push(Request::new(
                        p.clone(),
                        Op::Sample {
                            n: 1,
                            seed: i as u64 * 10 + j,
                        },
                    ));
                }
            }
            v
        };
        let run = |spill_depth: usize| -> Vec<Vec<u64>> {
            let server = InferenceServer::start(ServerConfig {
                workers: Threads::Fixed(4),
                spill_depth,
                ..ServerConfig::default()
            });
            // Pause so queues build depth and the shallow spill threshold
            // actually triggers divergent placement.
            server.pause();
            let ids: Vec<u64> = reqs()
                .into_iter()
                .map(|r| server.submit(r).unwrap())
                .collect();
            server.resume();
            let out = ids
                .into_iter()
                .map(|id| rows_bits(&server.wait(id).unwrap()))
                .collect();
            server.shutdown();
            out
        };
        assert_eq!(run(1), run(usize::MAX));
    }

    #[test]
    fn bounded_queue_backpressure_and_graceful_drain() {
        let (path, _) = published_model("backpressure.ckpt", 7);
        let server = InferenceServer::start(ServerConfig {
            capacity: 3,
            max_batch_rows: 64,
            ..ServerConfig::default()
        });
        // Paused pool: accepted requests pile up deterministically. The
        // capacity bound is pool-wide, whatever the worker count.
        server.pause();
        let req = |seed: u64| Request::new(path.clone(), Op::Sample { n: 1, seed });
        let ids: Vec<u64> = (0..3).map(|s| server.submit(req(s)).unwrap()).collect();
        assert_eq!(
            server.submit(req(99)).unwrap_err(),
            ServeError::QueueFull { capacity: 3 }
        );
        // Graceful shutdown lifts the pause and drains all three accepted
        // requests before the pool exits.
        let results: Vec<_> = {
            let server = &server;
            std::thread::scope(|scope| {
                let handles: Vec<_> = ids
                    .iter()
                    .map(|&id| scope.spawn(move || server.wait(id)))
                    .collect();
                // Submissions racing shutdown see a typed refusal, never a hang.
                server.resume();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        for r in results {
            assert_eq!(r.unwrap().shape(), (1, 16));
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests, 3);
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains_accepted_work() {
        let (path, _) = published_model("drain.ckpt", 8);
        let server = InferenceServer::start(ServerConfig {
            capacity: 8,
            max_batch_rows: 64,
            ..ServerConfig::default()
        });
        server.pause();
        let id = server
            .submit(Request::new(path.clone(), Op::Sample { n: 2, seed: 1 }))
            .unwrap();
        server.begin_shutdown();
        assert_eq!(
            server
                .submit(Request::new(path, Op::Sample { n: 1, seed: 2 }))
                .unwrap_err(),
            ServeError::ShuttingDown
        );
        // The accepted request still completes.
        assert_eq!(server.wait(id).unwrap().shape(), (2, 16));
        server.shutdown();
    }

    #[test]
    fn wait_on_an_unknown_ticket_is_a_typed_error_not_a_hang() {
        let server = InferenceServer::start(ServerConfig::default());
        assert_eq!(
            server.wait(12345).unwrap_err(),
            ServeError::UnknownTicket { id: 12345 }
        );
        server.shutdown();
    }

    #[test]
    fn a_consumed_ticket_cannot_be_waited_on_twice() {
        let (path, _) = published_model("consume.ckpt", 20);
        let server = InferenceServer::start(ServerConfig::default());
        let id = server
            .submit(Request::new(path, Op::Sample { n: 1, seed: 3 }))
            .unwrap();
        assert!(server.wait(id).is_ok());
        assert_eq!(
            server.wait(id).unwrap_err(),
            ServeError::UnknownTicket { id }
        );
        server.shutdown();
    }

    #[test]
    fn queued_requests_past_their_deadline_are_load_shed() {
        let (path, _) = published_model("deadline.ckpt", 21);
        let server = InferenceServer::start(ServerConfig::default());
        // Paused pool: the request sits in-queue past its (already
        // expired) deadline and must be shed, not served.
        server.pause();
        let req = Request::new(path, Op::Sample { n: 1, seed: 0 }).with_timeout(Duration::ZERO);
        let id = server.submit(req).unwrap();
        assert_eq!(server.wait(id).unwrap_err(), ServeError::DeadlineExceeded);
        assert!(server.health().deadline_shed >= 1);
        server.resume();
        server.shutdown();
    }

    #[test]
    fn default_timeout_covers_requests_without_their_own_deadline() {
        let (path, _) = published_model("default-timeout.ckpt", 22);
        let server = InferenceServer::start(ServerConfig {
            default_timeout: Some(Duration::from_millis(5)),
            ..ServerConfig::default()
        });
        server.pause();
        let id = server
            .submit(Request::new(path, Op::Sample { n: 1, seed: 0 }))
            .unwrap();
        assert_eq!(server.wait(id).unwrap_err(), ServeError::DeadlineExceeded);
        server.resume();
        server.shutdown();
    }

    #[test]
    fn retryable_errors_are_exactly_queue_full_and_worker_gone() {
        assert!(ServeError::QueueFull { capacity: 1 }.is_retryable());
        assert!(ServeError::WorkerGone.is_retryable());
        assert!(!ServeError::DeadlineExceeded.is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::EmptyRequest.is_retryable());
        assert!(!ServeError::UnknownTicket { id: 0 }.is_retryable());
    }

    #[test]
    fn request_retries_ride_out_queue_full_backpressure() {
        let (path, _) = published_model("retry.ckpt", 23);
        let server = InferenceServer::start(ServerConfig {
            capacity: 1,
            retry: RetryPolicy {
                max_attempts: 50,
                backoff: Duration::from_millis(1),
            },
            ..ServerConfig::default()
        });
        // Fill the 1-slot queue while paused so the next request sees
        // QueueFull and has to retry until resume() drains the slot.
        server.pause();
        let parked = server
            .submit(Request::new(path.clone(), Op::Sample { n: 1, seed: 1 }))
            .unwrap();
        let result = std::thread::scope(|scope| {
            let server = &server;
            let path = path.clone();
            let h = scope
                .spawn(move || server.request(Request::new(path, Op::Sample { n: 1, seed: 2 })));
            std::thread::sleep(Duration::from_millis(10));
            server.resume();
            h.join().unwrap()
        });
        assert_eq!(result.unwrap().shape(), (1, 16));
        assert_eq!(server.wait(parked).unwrap().shape(), (1, 16));
        server.shutdown();
    }

    #[test]
    fn health_reports_a_live_unremarkable_server() {
        let server = InferenceServer::start(ServerConfig::default());
        let health = server.health();
        assert!(health.worker_alive);
        assert!(health.workers >= 1);
        assert_eq!(health.respawns, 0);
        assert_eq!(health.pending, 0);
        server.shutdown();
    }

    #[test]
    fn stats_absorb_adds_counts_and_maxes_the_high_water_mark() {
        let mut a = EngineStats {
            requests: 3,
            batches: 2,
            rows: 10,
            largest_batch_requests: 2,
            checkpoint_recoveries: 1,
        };
        a.absorb(EngineStats {
            requests: 5,
            batches: 1,
            rows: 7,
            largest_batch_requests: 4,
            checkpoint_recoveries: 0,
        });
        assert_eq!(
            a,
            EngineStats {
                requests: 8,
                batches: 3,
                rows: 17,
                largest_batch_requests: 4,
                checkpoint_recoveries: 1,
            }
        );
    }

    #[test]
    fn probe_reads_checkpoint_metadata() {
        let (path, direct) = published_model("probe.ckpt", 10);
        let ckpt = probe_checkpoint(&path).unwrap();
        assert_eq!(ckpt.name, direct.name);
        assert_eq!(ckpt.seed, 10);
        assert!(probe_checkpoint(&temp_path("missing.ckpt")).is_err());
    }
}
