//! Deterministic fault injection — the chaos-testing entry point.
//!
//! Re-exports [`sqvae_core::faults`] under the facade so the serving stack
//! ([`crate::serve`]), the trainer, and the checkpoint writer all consult
//! **one** global injector. The injection points:
//!
//! | Point | Where it bites | What it exercises |
//! |---|---|---|
//! | [`FaultPoint::WorkerPanic`] | top of a pool worker's batch | supervisor respawn, [`crate::serve::ServeError::WorkerGone`] fan-out |
//! | [`FaultPoint::QueueSaturation`] | [`crate::serve::InferenceServer::submit`] | [`crate::serve::ServeError::QueueFull`] backpressure + [`crate::serve::RetryPolicy`] |
//! | [`FaultPoint::CheckpointFlip`] | after a checkpoint save | checksum detection + `.bak` recovery |
//! | [`FaultPoint::CheckpointTruncate`] | after a checkpoint save | truncation detection + `.bak` recovery |
//! | [`FaultPoint::NanLoss`] | a training batch's loss | trainer snapshot rollback guard |
//!
//! Enable with [`install`] / [`FaultScope`] in tests, or set `SQVAE_FAULTS`
//! (e.g. `seed=42,worker_panic=0.25,nan_loss=0.2`, or `on` for
//! [`FaultPlan::chaos`]) and call [`install_from_env`]. With no plan
//! installed every [`trigger`] is one relaxed atomic load — the hot paths
//! pay nothing. See `tests/chaos.rs` for the full harness in action.
//!
//! Multi-worker serving adds a second axis: each pool member consults the
//! injector through [`trigger_for`] with its worker index, giving every
//! (point, worker) pair an independent deterministic stream — so a plan's
//! schedule for worker 0 never shifts when worker 1 picks up load. Add
//! `worker=N` to the plan (or [`FaultPlan::with_worker`]) to confine the
//! faults to a single pool member, e.g.
//! `seed=42,worker_panic=1.0,worker=0` kills exactly worker 0's next batch.

pub use sqvae_core::faults::{
    active, clear, install, install_from_env, stats, trigger, trigger_for, FaultPlan, FaultPoint,
    FaultScope, FaultStats, ALL_FAULT_POINTS, N_FAULT_POINTS,
};
